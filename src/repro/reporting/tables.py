"""Regeneration of the paper's tables from flow results."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.flow import FlowResult, percent_reduction
from repro.netlist import Design


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table."""
    cells = [[str(h) for h in headers], *([str(c) for c in row] for row in rows)]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass(frozen=True)
class PaperComparison:
    """One paper-vs-measured data point for EXPERIMENTS.md."""

    experiment: str
    metric: str
    paper: float | None
    measured: float

    def row(self) -> tuple[str, str, str, str]:
        paper = "n/a (not legible)" if self.paper is None else f"{self.paper:,.2f}"
        return (self.experiment, self.metric, paper, f"{self.measured:,.2f}")


# ----------------------------------------------------------------------
# Table builders (one per paper table)
# ----------------------------------------------------------------------
def table1_rows(design: Design, overcell: FlowResult) -> list[list[object]]:
    """Table 1: example information including the level A partition."""
    stats = design.stats()
    return [[
        design.name,
        stats.num_cells,
        stats.num_nets,
        stats.num_pins,
        overcell.notes.get("level_a_nets", 0),
        f"{overcell.notes.get('level_a_avg_pins', 0.0):.2f}",
        overcell.notes.get("level_b_nets", 0),
    ]]


TABLE1_HEADERS = [
    "Example", "Cells", "Nets", "Pins",
    "Level A nets", "Avg pins/net (A)", "Level B nets",
]


def table2_rows(
    baseline: FlowResult, overcell: FlowResult
) -> list[list[object]]:
    """Table 2: % reductions of the over-cell flow vs two-layer channel."""
    return [[
        baseline.design,
        f"{percent_reduction(baseline.layout_area, overcell.layout_area):.1f}",
        f"{percent_reduction(baseline.wire_length, overcell.wire_length):.1f}",
        f"{percent_reduction(baseline.via_count, overcell.via_count):.1f}",
    ]]


TABLE2_HEADERS = ["Example", "Layout Area %", "Wire Length %", "Vias %"]


def table3_rows(
    ml_channel: FlowResult, overcell: FlowResult
) -> list[list[object]]:
    """Table 3: areas of the N-layer channel model vs N-layer over-cell."""
    return [[
        ml_channel.design,
        f"{ml_channel.layout_area:,}",
        f"{overcell.layout_area:,}",
        f"{percent_reduction(ml_channel.layout_area, overcell.layout_area):.1f}",
    ]]


def table3_headers(num_layers: int = 4) -> list[str]:
    """Table 3 headers for an ``num_layers``-metal comparison.

    The paper compares 4-layer flows; results routed on more over-cell
    planes (``FlowParams.planes > 1``) report their true layer count
    (``2 + 2 * planes``) instead of a hard-coded "4-Layer".
    """
    return [
        "Example",
        f"{num_layers}-Layer Channel Area",
        f"{num_layers}-Layer Over-Cell Area",
        "Reduction %",
    ]


#: The paper's own 4-layer headline (kept for the Table 3 benchmarks).
TABLE3_HEADERS = table3_headers()
