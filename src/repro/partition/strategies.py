"""Partitioning strategies for the two-level routing flow."""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.netlist import Net


class PartitionStrategy(enum.Enum):
    """Built-in net partitioning policies.

    CRITICAL_TO_A
        The paper's experimental setting: critical and timing nets are
        routed in level A channels (fine-pitch metal1/metal2), all
        other nets over the cells in level B.
    ALL_A
        Everything through channels - the conventional two-layer flow.
    ALL_B
        Everything over the cells; the paper's area-priority extreme
        ("channel areas can be eliminated and the entire set of
        interconnections routed in level B").
    LONG_TO_B
        Delay-driven: nets longer than a half-perimeter threshold go to
        level B, where the wider m3/m4 lines yield shorter propagation
        delays; local nets stay in channels.
    """

    CRITICAL_TO_A = "critical-to-a"
    ALL_A = "all-a"
    ALL_B = "all-b"
    LONG_TO_B = "long-to-b"


def partition_nets(
    nets: Iterable[Net],
    strategy: PartitionStrategy = PartitionStrategy.CRITICAL_TO_A,
    *,
    length_threshold: int | None = None,
) -> tuple[list[Net], list[Net]]:
    """Split ``nets`` into ``(set_a, set_b)`` per ``strategy``.

    ``LONG_TO_B`` requires placed pins (half-perimeter is geometric)
    and a ``length_threshold`` in lambda.
    """
    set_a: list[Net] = []
    set_b: list[Net] = []
    for net in nets:
        if strategy is PartitionStrategy.ALL_A:
            set_a.append(net)
        elif strategy is PartitionStrategy.ALL_B:
            set_b.append(net)
        elif strategy is PartitionStrategy.CRITICAL_TO_A:
            (set_a if net.is_critical else set_b).append(net)
        elif strategy is PartitionStrategy.LONG_TO_B:
            if length_threshold is None:
                raise ValueError("LONG_TO_B needs a length_threshold")
            (set_b if net.half_perimeter > length_threshold else set_a).append(net)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown strategy {strategy!r}")
    return set_a, set_b
