"""Net partitioning into channel-routed set A and over-cell set B.

Paper section 2: whole nets are assigned to exactly one set (a
multi-terminal net is never split across sets), and the choice of
strategy is the user's main lever on layout area, delay and congestion.
"""

from repro.partition.strategies import PartitionStrategy, partition_nets

__all__ = ["PartitionStrategy", "partition_nets"]
