"""The level B router: serial over-cell routing on the reserved planes.

The paper routes level B on the single metal3/metal4 pair; the router
generalizes that to N reserved-layer planes (``LevelBConfig.planes``,
default 1 — see docs/LAYERS.md), assigning each net to one plane up
front and then routing it entirely on that plane's grid.

Ties the pieces together exactly as section 3 describes:

1. define routing tracks over the whole layout and assign a pair of
   tracks to each net terminal;
2. order the nets (longest distance first by default);
3. for each two-terminal connection, hand the search/select/commit
   cycle to the configured :class:`~repro.core.engine.ConnectionEngine`
   (the MBFS/PST engine by default, per sections 3.1-3.2, committing
   through the ``O(t)`` occupancy update of section 3.4);
4. decompose multi-terminal nets with the Steiner-Prim builder,
   connecting each new terminal to the closest point (terminal or
   Steiner point) of the partially routed tree;
5. widen the search region and retry when a bounded search fails.

Speculative state changes - rip-up-and-reroute, refinement, routability
probes - run inside :class:`~repro.grid.GridTransaction` journals, so
undoing a decision costs time proportional to the cells it touched,
never a full-grid scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro import instrument
from repro.instrument.names import (
    CONNECTIONS_ROUTED,
    EVT_MAZE_FALLBACK,
    EVT_NET_FAILED,
    EVT_NET_ROUTED,
    EVT_RIPUP,
    LEVELB_UTILIZATION,
    MAZE_FALLBACKS,
    MEM_GRID_BYTES,
    MEM_GRID_DENSE_EQUIV_BYTES,
    NETS_FAILED,
    NETS_ROUTED,
    OCC_CELLS_TOUCHED,
    REGION_EXPANSIONS,
    RIPUPS,
    SPAN_LEVELB_NET,
    SPAN_LEVELB_REFINE,
    SPAN_LEVELB_ROUTE,
    SPAN_MAZE_RESCUE,
    TXN_COMMITS,
    TXN_ROLLBACKS,
    TXN_UNDO_CELLS,
)
from repro.geometry import Interval, Rect
from repro.netlist import Net
from repro.technology import Technology
from repro.core.assign import NetDemand, assign_planes
from repro.core.cost import CornerCostEvaluator, CostWeights, TrackHistory
from repro.core.engine import (
    ConnectionEngine,
    EngineContext,
    Region,
    RoutedConnection,
    get_engine,
)
from repro.core.ordering import NetOrdering, order_nets
from repro.core.steiner import SteinerTreeBuilder, dedupe_terminals
from repro.core.tig import GridTerminal, TrackIntersectionGraph

if TYPE_CHECKING:
    from repro.grid import RoutingGrid


@dataclass(frozen=True)
class Obstacle:
    """An over-cell area excluded from level B routing.

    ``block_h`` / ``block_v`` select which layer of the pair the
    obstacle occupies: pre-existing metal4 straps block horizontal
    wiring only, metal3 blocks vertical only, and user-excluded areas
    over sensitive circuits block both (the paper's cross-talk case).
    """

    rect: Rect
    block_h: bool = True
    block_v: bool = True
    name: str = ""


@dataclass(frozen=True)
class LevelBConfig:
    """Tuning knobs for the level B router."""

    weights: CostWeights = field(default_factory=CostWeights.sparse)
    ordering: NetOrdering = NetOrdering.LONGEST_FIRST
    region_margin_tracks: int = 8
    region_growth: int = 4
    max_region_expansions: int = 2
    max_depth: int = 12
    max_nodes_per_search: int = 250_000
    max_entries_per_track: int = 8
    # Connection engines by registry name (repro.core.engine).  The
    # primary engine routes every connection; the rescue engine is the
    # last resort behind ``maze_fallback``.
    engine: str = "mbfs"
    rescue_engine: str = "lee"
    # The MBFS excludes paths with more than one corner per track, so
    # on congested grids a routable connection can be invisible to it
    # (the paper conditions 100% completion on the solution space).
    # The fallback re-tries failed connections with the Lee/Dijkstra
    # maze search over the whole grid before giving up.
    maze_fallback: bool = True
    maze_via_penalty: float = 10.0
    # Bounded rip-up-and-reroute: when a net stays unroutable even via
    # the maze fallback, up to ``max_ripups`` neighbouring nets are
    # ripped up and rerouted after it.  A completion aid beyond the
    # paper (whose experiments assume the solution space admits 100%
    # completion); set to 0 to disable.
    max_ripups: int = 24
    # Cross-talk control (paper section 3.2's extension hook): when any
    # net is marked ``is_sensitive`` the router adds a
    # ParallelRunPenalty so other nets avoid long parallel runs next to
    # it (and it next to them).  Set the weight to 0 to disable.
    parallel_run_weight: float = 20.0
    parallel_run_separation: int = 1
    # Post-routing refinement: after all nets route, each net is
    # ripped up and rerouted once per pass with full knowledge of the
    # others (serial routers over-constrain early nets).  Each net's
    # rip/reroute runs in a grid transaction; a reroute that does not
    # improve on the old wiring is rolled back in O(cells touched).
    refinement_passes: int = 0
    # Checked mode (repro.check): run the invariant sanitizer and grid
    # bookkeeping audit after every net commit, raising CheckFailure on
    # the first violation.  Off by default - it adds a full ledger
    # replay per commit (see docs/VERIFICATION.md for measured cost).
    checked: bool = False
    # Over-cell planes (generalized layer stack, docs/LAYERS.md).  The
    # default of 1 is the paper's single metal3/metal4 plane; with more
    # planes the assignment pass (repro.core.assign) distributes nets
    # across them by estimated congestion, pricing the deeper terminal
    # via stacks with ``plane_via_weight`` per extra via level.
    planes: int = 1
    plane_via_weight: float = 4.0
    # Occupancy storage backend (repro.grid.backend registry).  The
    # default dense arrays are fastest per access; "sparse" keeps
    # memory proportional to committed geometry so scale-tier designs
    # fit (docs/SCALING.md).  Backends are bit-identical by contract:
    # the choice never changes routed geometry.
    backend: str = "dense"
    # Routing objective: "wire" (the paper's wire-length-led cost, the
    # default) or "vias" (via minimization — the plane assignment and
    # cost model reprice corner and stack vias from the technology's
    # per-level via costs, pulling nets toward shallow planes and
    # penalising corners harder).  "wire" is bit-identical to the seed.
    objective: str = "wire"


#: How much harder the "vias" objective leans on via prices than the
#: default plane/corner weighting.  The knee of a measured trade-off:
#: raising it keeps cutting vias but concentrates nets on plane 0
#: until completions start to fall on saturated designs (the wide
#: bench tier loses ~9% completion by 8.0); 4.0 takes most of the via
#: savings while staying well clear of that cliff.
VIA_OBJECTIVE_SCALE = 4.0


@dataclass
class RoutedNet:
    """All connections realised for one net."""

    net: Net
    net_id: int
    connections: list[RoutedConnection] = field(default_factory=list)
    failed_terminals: int = 0
    #: The over-cell plane the net routes on (0 = metal3/metal4).
    plane: int = 0

    @property
    def complete(self) -> bool:
        return self.failed_terminals == 0

    @property
    def wire_length(self) -> int:
        return sum(c.wire_length for c in self.connections)

    @property
    def corner_count(self) -> int:
        return sum(c.corner_count for c in self.connections)

    @property
    def via_count(self) -> int:
        """Corner vias plus this net's terminal via stacks.

        The per-net share of :attr:`LevelBResult.total_vias`: each
        connected pin's stack climbs ``1 + 2 * plane`` via levels.
        """
        stacks = (self.net.degree - self.failed_terminals) * (1 + 2 * self.plane)
        return self.corner_count + stacks


@dataclass
class LevelBResult:
    """Aggregate outcome of a level B routing run."""

    tig: TrackIntersectionGraph
    routed: list[RoutedNet]
    elapsed_s: float
    nodes_created: int
    ripups: int = 0
    # Inputs the independent checker (repro.check) needs verbatim: the
    # layout rectangle and the declared exclusions.  Carried on the
    # result so verification never reverse-engineers them from
    # occupancy state.
    bounds: Rect | None = None
    obstacles: tuple[Obstacle, ...] = ()
    #: The technology the run routed under.  Carried so the independent
    #: checker (repro.check) can enforce its width-dependent spacing
    #: and min-width rules against the extracted geometry.
    technology: Technology | None = None

    def __post_init__(self) -> None:
        # Name index for O(1) net_result lookups.  Net names are
        # guaranteed unique by LevelBRouter; a direct construction with
        # duplicates fails loudly here instead of shadowing a result.
        index: dict[str, RoutedNet] = {}
        for r in self.routed:
            if r.net.name in index:
                raise ValueError(f"duplicate net name {r.net.name!r} in result")
            index[r.net.name] = r
        self._by_name = index

    @property
    def total_wire_length(self) -> int:
        return sum(r.wire_length for r in self.routed)

    @property
    def total_corners(self) -> int:
        return sum(r.corner_count for r in self.routed)

    @property
    def num_planes(self) -> int:
        """Over-cell planes the run routed on."""
        return self.tig.planes.num_planes

    @property
    def total_vias(self) -> int:
        """Corner vias plus the terminal via stacks of connected pins.

        A pin of a plane-0 net costs one stack via (m2 up to the
        plane); every plane of extra altitude adds two more via levels
        to each of the net's stacks, so a plane-``p`` pin contributes
        ``1 + 2p``.  On a single-plane run this reduces to the paper's
        count: corners + one stack per connected pin.
        """
        stacks = sum(
            (r.net.degree - r.failed_terminals) * (1 + 2 * r.plane)
            for r in self.routed
        )
        return self.total_corners + stacks

    def nets_on_plane(self, plane: int) -> list[RoutedNet]:
        """Routed nets assigned to one over-cell plane."""
        return [r for r in self.routed if r.plane == plane]

    @property
    def nets_attempted(self) -> int:
        return len(self.routed)

    @property
    def nets_completed(self) -> int:
        return sum(1 for r in self.routed if r.complete)

    @property
    def completion_rate(self) -> float:
        if not self.routed:
            return 1.0
        return self.nets_completed / len(self.routed)

    def net_result(self, name: str) -> RoutedNet:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"net {name!r} was not routed at level B") from None


class NetSpeculator(Protocol):
    """What :meth:`LevelBRouter.route` needs from a parallel speculator.

    Implemented by :class:`repro.dispatch.WaveSpeculator`.  The router
    stays in charge of net order, rip-up and refinement; the speculator
    merely gets the first shot at each net as it reaches the head of
    the queue.  Returning ``None`` from :meth:`take` means "no valid
    speculation — route this net serially", which is always safe.
    """

    def begin(self, ordered: Sequence[Net]) -> None:
        """Called once with the canonical routing order."""

    def take(self, net: Net) -> RoutedNet | None:
        """A committed result for ``net``, or ``None`` to route serially."""


def coupling_terms(
    net_id: int, sensitive_ids: frozenset[int], config: LevelBConfig
) -> tuple:
    """Cost-function extension terms for one net's connections.

    A sensitive net keeps clear of *all* foreign wiring; every other
    net keeps clear of the sensitive nets.  A free function so the
    speculative workers of :mod:`repro.dispatch` build the exact terms
    the serial router would.
    """
    if not sensitive_ids or config.parallel_run_weight <= 0:
        return ()
    from repro.core.coupling import ParallelRunPenalty

    if net_id in sensitive_ids:
        targets = None  # avoid everyone
    else:
        targets = sensitive_ids - {net_id}
    return (
        ParallelRunPenalty(
            targets,
            weight=config.parallel_run_weight,
            separation=config.parallel_run_separation,
            exclude=net_id,
        ),
    )


def route_net_terminals(
    grid: "RoutingGrid",
    net_id: int,
    terminals: Sequence[GridTerminal],
    connect: Callable[[GridTerminal, GridTerminal], RoutedConnection | None],
) -> tuple[list[RoutedConnection], int]:
    """Decompose one net into two-terminal connections and route them.

    The net-level logic shared by the serial router and the speculative
    workers of :mod:`repro.dispatch` — terminal de-duplication, the
    two-terminal fast path and the Steiner-Prim loop live here once, so
    a worker's decomposition is the serial decomposition by
    construction.  ``connect`` routes a single connection (engine choice
    and rescue policy stay with the caller).  Returns the committed
    connections and the count of terminals left unreached.
    """
    for t in terminals:
        grid.mark_terminal_routed(t.v_idx, t.h_idx)
    connections: list[RoutedConnection] = []
    failed = 0
    unique = dedupe_terminals(terminals)
    if len(unique) < 2:
        return connections, failed  # all pins coincide; nothing to wire
    if len(unique) == 2:
        conn = connect(unique[0], unique[1])
        if conn is None:
            failed += 1
        else:
            connections.append(conn)
        return connections, failed
    builder = SteinerTreeBuilder(grid, net_id, unique)
    while not builder.done:
        source = builder.next_source()
        conn = None
        for target in builder.attach_candidates(source):
            conn = connect(source, target)
            if conn is not None:
                break
        if conn is None:
            builder.fail(source)
            failed += 1
        else:
            builder.commit(source, conn.path.waypoints())
            connections.append(conn)
    return connections, failed


class LevelBRouter:
    """Routes a set of nets over the whole layout area.

    Parameters
    ----------
    bounds:
        The fixed layout rectangle (known after level A, section 2).
    nets:
        Set B nets; their pins must have placed positions.  Net names
        must be unique (results are indexed by name).
    technology:
        Supplies the over-cell plane stack (pitches, layer names);
        must carry at least ``config.planes`` reserved pairs above
        metal1/metal2.  Defaults to the paper's four-layer stack, or
        an extended preset when ``config.planes > 1``.
    obstacles:
        Over-cell exclusions (:class:`Obstacle` or bare :class:`Rect`).
    config:
        Router tuning; defaults follow the paper's sparse setting.
    """

    def __init__(
        self,
        bounds: Rect,
        nets: Sequence[Net],
        *,
        technology: Technology | None = None,
        obstacles: Iterable[Obstacle | Rect] = (),
        config: LevelBConfig | None = None,
    ) -> None:
        self.bounds = bounds
        self.config = config or LevelBConfig()
        num_planes = self.config.planes
        if num_planes < 1:
            raise ValueError(f"config.planes must be >= 1, got {num_planes}")
        if self.config.objective not in ("wire", "vias"):
            raise ValueError(
                f"config.objective must be 'wire' or 'vias', "
                f"got {self.config.objective!r}"
            )
        if self.config.objective == "vias":
            # The Lee rescue trades corners against length through
            # ``maze_via_penalty``; under via minimization every corner
            # is a via, so its price scales accordingly.  The replaced
            # config is what engines and dispatch workers see, keeping
            # serial and speculative pricing identical.
            self.config = replace(
                self.config,
                maze_via_penalty=(
                    self.config.maze_via_penalty * VIA_OBJECTIVE_SCALE
                ),
            )
        tech = technology or (
            Technology.four_layer()
            if num_planes == 1
            else Technology.with_overcell_planes(num_planes)
        )
        if tech.num_layers < 4:
            raise ValueError("level B routing needs a 4-layer technology")
        if tech.num_overcell_planes < num_planes:
            raise ValueError(
                f"level B routing on {num_planes} planes needs a "
                f"{2 + 2 * num_planes}-layer technology, "
                f"{tech.name} has {tech.num_layers}"
            )
        self.technology = tech
        #: The over-cell plane decomposition the run routes on.
        self.stack = tech.layer_stack()
        self.nets = [n for n in nets if n.degree >= 2]
        seen_names = set()
        for net in self.nets:
            if net.name in seen_names:
                raise ValueError(
                    f"duplicate net name {net.name!r}: level B results are "
                    "indexed by name, so names must be unique"
                )
            seen_names.add(net.name)
        terminal_points = [p for net in self.nets for p in net.pin_positions()]
        for p in terminal_points:
            if not bounds.contains_point(p):
                raise ValueError(f"terminal {p} outside layout bounds {bounds}")
        # All planes share the track lattice generated at plane 0's
        # (metal3/metal4) pitch; upper planes' coarser physical pitch
        # enters the area/delay models, not the grid (docs/LAYERS.md).
        self.tig = TrackIntersectionGraph.over_area(
            bounds,
            v_pitch=self.stack.plane(0).v_pitch,
            h_pitch=self.stack.plane(0).h_pitch,
            terminal_points=terminal_points,
            num_planes=num_planes,
            backend=self.config.backend,
        )
        self.obstacles: list[Obstacle] = []
        for obs in obstacles:
            if isinstance(obs, Rect):
                obs = Obstacle(rect=obs)
            self.obstacles.append(obs)
            self.tig.add_obstacle(
                obs.rect, block_h=obs.block_h, block_v=obs.block_v
            )
        self._net_ids: dict[Net, int] = {
            net: i + 1 for i, net in enumerate(sorted(self.nets, key=lambda n: n.name))
        }
        # Plane assignment is decided before any terminal is reserved:
        # the pass sees only pin geometry, so it is independent of net
        # registration order (and trivially all-plane-0 when planes=1).
        # Under objective="vias" the assignment's per-via-level price is
        # scaled up by the technology's actual via costs, pulling nets
        # toward shallow planes (fewer stack-via levels per pin).
        via_weight = self.config.plane_via_weight
        if self.config.objective == "vias":
            mean_via_cost = sum(v.cost for v in tech.vias) / len(tech.vias)
            via_weight *= VIA_OBJECTIVE_SCALE * mean_via_cost
        self._plane_assignment = assign_planes(
            [
                NetDemand(net_id, tuple(net.pin_positions()))
                for net, net_id in self._net_ids.items()
            ],
            bounds,
            num_planes,
            via_weight,
        )
        # Width-class footprints: each net's (span, guard) claim on its
        # assigned plane, (1, 0) for signal nets on every preset.
        self._footprints: dict[int, tuple[int, int]] = {
            net_id: tech.net_footprint(
                net.net_class, self._plane_assignment[net_id]
            )
            for net, net_id in self._net_ids.items()
        }
        for net, net_id in self._net_ids.items():
            self.tig.register_net(
                net_id,
                net.pin_positions(),
                self._plane_assignment[net_id],
                footprint=self._footprints[net_id],
            )
        self._nodes_created = 0
        self._sensitive_ids = frozenset(
            self._net_ids[n] for n in self.nets if n.is_sensitive
        )
        #: Negotiated-congestion history, one :class:`TrackHistory` per
        #: plane, attached by :mod:`repro.iterate` between iterations.
        #: ``None`` (the default) keeps every evaluator — and therefore
        #: every routed path — bit-identical to one-pass routing.
        self.history: tuple[TrackHistory, ...] | None = None
        self._engine: ConnectionEngine = self._primary_engine()
        self._rescue: ConnectionEngine | None = None
        # One engine context per plane, each bound to that plane's
        # occupancy grid; ``_ctx`` stays the plane-0 context because
        # the single-plane stack (and repro.dispatch's workers) use it
        # directly.
        self._ctxs = tuple(
            EngineContext(
                grid=self.tig.planes[plane],
                config=self.config,
                evaluator=self._evaluator_for,
                regions=self._regions,
                add_nodes=self._add_nodes,
            )
            for plane in range(num_planes)
        )
        self._ctx = self._ctxs[0]

    # ------------------------------------------------------------------
    # Engine wiring
    # ------------------------------------------------------------------
    def _primary_engine(self) -> ConnectionEngine:
        """The engine routing every connection (config-selected)."""
        return get_engine(self.config.engine).from_config(self.config)

    def _rescue_engine(self) -> ConnectionEngine:
        """The last-resort engine behind ``maze_fallback`` (lazy)."""
        if self._rescue is None:
            self._rescue = get_engine(self.config.rescue_engine).from_config(
                self.config
            )
        return self._rescue

    def _add_nodes(self, n: int) -> None:
        self._nodes_created += n

    def _evaluator_for(self, net_id: int) -> CornerCostEvaluator:
        """A fresh cost evaluator carrying the net's extension terms.

        Bound to the net's own plane grid; on an upper plane the
        evaluator also carries the constant inter-plane via-stack
        surcharge (``base_cost``), zero on plane 0.
        """
        plane = self.tig.plane_of(net_id)
        base = (
            self.config.plane_via_weight * self.stack.via_depth(plane)
            if plane
            else 0.0
        )
        return CornerCostEvaluator(
            self.tig.grid_of(net_id),
            self.config.weights,
            extra_terms=self._extra_terms_for(net_id),
            base_cost=base,
            history=self.history[plane] if self.history is not None else None,
            width_tracks=self._footprints[net_id][0],
            corner_surcharge=self.corner_surcharge(net_id),
        )

    def footprint_of(self, net_id: int) -> tuple[int, int]:
        """The ``(span, guard)`` footprint of a registered net."""
        return self._footprints[net_id]

    def corner_surcharge(self, net_id: int) -> float:
        """Flat per-corner price of a net under the active objective.

        Zero under ``objective="wire"``; under ``"vias"`` each corner
        pays the technology's via cost on the net's plane, scaled by
        :data:`VIA_OBJECTIVE_SCALE`.  Constant per candidate corner, so
        the equal-corner MBFS ranking is untouched — the term steers
        engines that trade corners against length (the Lee rescue) and
        keeps reported costs comparable across objectives.
        """
        if self.config.objective != "vias":
            return 0.0
        plane = self.tig.plane_of(net_id)
        return VIA_OBJECTIVE_SCALE * self.technology.corner_via_cost(plane)

    def _ctx_for(self, net_id: int) -> EngineContext:
        """The engine context of a net's plane."""
        return self._ctxs[self.tig.plane_of(net_id)]

    def _extra_terms_for(self, net_id: int) -> tuple:
        return coupling_terms(net_id, self._sensitive_ids, self.config)

    # ------------------------------------------------------------------
    def net_id(self, net: Net) -> int:
        return self._net_ids[net]

    @property
    def sensitive_ids(self) -> frozenset[int]:
        """Ids of nets marked ``is_sensitive`` (cross-talk extension)."""
        return self._sensitive_ids

    def route(
        self,
        *,
        speculator: NetSpeculator | None = None,
        order: Sequence[Net] | None = None,
    ) -> LevelBResult:
        """Route every net in the configured order.

        ``order`` overrides the configured :class:`NetOrdering` with an
        explicit sequence (the iterative driver's ordering policies,
        docs/ITERATION.md).  It must be a permutation of this router's
        nets; ``None`` — always the case in one-pass mode — keeps the
        seed-identical ``order_nets`` path.

        Nets that fail outright trigger the bounded rip-up loop: the
        blockers crowding the failed terminals are unrouted, the failed
        net retries first, and the victims re-route after it.  The work
        queue is a deque with per-net generation counters, so pops,
        victim removals and requeues are all O(1).

        ``speculator`` (:class:`NetSpeculator`, see ``repro.dispatch``)
        gets the first shot at each net as it reaches the head of the
        queue; when it declines (returns ``None`` — stale speculation,
        window conflict, requeued net) the net routes serially right
        here, so every order-dependent decision is made exactly as in a
        serial run.

        The whole run executes inside a ``levelb.route`` instrumentation
        span; ``elapsed_s`` is the span's wall time (measured whether or
        not a collector is active).
        """
        # Journal-balance audits must tolerate an outer transaction
        # (probe() wraps this whole method in one).
        ambient_txn = self.tig.planes.in_transaction
        with instrument.span(SPAN_LEVELB_ROUTE) as route_span:
            # Declare the level B catalogue so exported profiles carry
            # these keys (at 0) even on runs where they never fire.
            instrument.active().declare(
                CONNECTIONS_ROUTED,
                MAZE_FALLBACKS,
                NETS_FAILED,
                NETS_ROUTED,
                OCC_CELLS_TOUCHED,
                REGION_EXPANSIONS,
                RIPUPS,
                TXN_COMMITS,
                TXN_ROLLBACKS,
                TXN_UNDO_CELLS,
            )
            if order is None:
                ordered = order_nets(self.nets, self.config.ordering)
            else:
                ordered = list(order)
                if len(ordered) != len(self.nets) or set(ordered) != set(
                    self.nets
                ):
                    raise ValueError(
                        "explicit route order must be a permutation of the "
                        "router's nets"
                    )
            if speculator is not None:
                speculator.begin(ordered)
            # Work queue: (net, generation) entries plus a live-generation
            # map.  Requeueing bumps a net's generation, so stale deque
            # entries are skipped on pop instead of removed in O(n).
            queue: deque[tuple[Net, int]] = deque((net, 0) for net in ordered)
            live: dict[Net, int] = {net: 0 for net in ordered}
            pushes: dict[Net, int] = {}
            results: dict[Net, RoutedNet] = {}
            ripups_left = self.config.max_ripups
            ripup_count = 0
            while queue:
                net, generation = queue.popleft()
                if live.get(net) != generation:
                    continue  # superseded by a rip-up requeue
                del live[net]
                outcome = speculator.take(net) if speculator is not None else None
                if outcome is None:
                    with instrument.span(SPAN_LEVELB_NET):
                        outcome = self._route_net(net)
                results[net] = outcome
                if self.config.checked:
                    self._sanitize(outcome, ambient_txn)
                if outcome.complete:
                    instrument.event(
                        EVT_NET_ROUTED,
                        net=net.name,
                        wire_length=outcome.wire_length,
                        corners=outcome.corner_count,
                    )
                    continue
                instrument.event(
                    EVT_NET_FAILED,
                    net=net.name,
                    failed_terminals=outcome.failed_terminals,
                )
                if ripups_left <= 0:
                    continue
                victims = self._pick_ripup_victims(net, results)
                if not victims:
                    continue
                ripups_left -= len(victims)
                ripup_count += len(victims)
                instrument.count(RIPUPS, len(victims))
                instrument.event(
                    EVT_RIPUP,
                    net=net.name,
                    victims=[v.name for v in victims],
                )
                self._unroute_net(net)
                results.pop(net)
                for victim in victims:
                    self._unroute_net(victim)
                    results.pop(victim, None)
                for requeued in reversed([net, *victims]):
                    token = pushes.get(requeued, 0) + 1
                    pushes[requeued] = token
                    live[requeued] = token
                    queue.appendleft((requeued, token))
            for _ in range(self.config.refinement_passes):
                with instrument.span(SPAN_LEVELB_REFINE):
                    self._refine(results, ambient_txn)
            routed = [results[net] for net in self.nets if net in results]
            inst = instrument.active()
            if inst.enabled:
                inst.count(NETS_ROUTED, sum(1 for r in routed if r.complete))
                inst.count(NETS_FAILED, sum(1 for r in routed if not r.complete))
                inst.gauge(LEVELB_UTILIZATION, self.tig.planes.utilization())
                inst.gauge(
                    MEM_GRID_BYTES, float(self.tig.planes.memory_bytes())
                )
                inst.gauge(
                    MEM_GRID_DENSE_EQUIV_BYTES,
                    float(self.tig.planes.dense_equiv_bytes()),
                )
        return LevelBResult(
            tig=self.tig,
            routed=routed,
            elapsed_s=route_span.elapsed_s,
            nodes_created=self._nodes_created,
            ripups=ripup_count,
            bounds=self.bounds,
            obstacles=tuple(self.obstacles),
            technology=self.technology,
        )

    def probe(self) -> LevelBResult:
        """What-if routability assessment: route everything, keep nothing.

        Runs :meth:`route` inside one grid transaction and rolls it
        back, so the returned :class:`LevelBResult` reports completion,
        wire length and corners while the occupancy grid comes back
        byte-identical to its pre-probe state (terminals still
        reserved, no wiring).  Rollback cost is proportional to the
        cells the probe touched.  The router can :meth:`route` for real
        afterwards.
        """
        txn = self.tig.planes.begin()
        try:
            result = self.route()
        finally:
            if not txn.closed:
                txn.rollback()
        return result

    def _refine(
        self, results: dict[Net, RoutedNet], ambient_txn: bool = False
    ) -> None:
        """One refinement pass: reroute every net with others in place.

        Nets revisit in routing order.  Each rip/reroute runs inside a
        grid transaction: a net's own wiring is freed before its
        reroute (so its previous path remains available), and a reroute
        that does not improve on the old outcome is rolled back through
        the journal - O(cells touched), with the old wiring restored
        byte-identically.
        """
        for net in order_nets(list(results), self.config.ordering):
            old = results[net]
            if not old.connections and old.complete:
                continue  # nothing wired (coincident pins)
            txn = self.tig.grid_of(self._net_ids[net]).begin()
            self._unroute_net(net)
            new = self._route_net(net)
            if (new.failed_terminals, new.wire_length, new.corner_count) <= (
                old.failed_terminals,
                old.wire_length,
                old.corner_count,
            ):
                txn.commit()
                results[net] = new
            else:
                txn.rollback()
                results[net] = old
            if self.config.checked:
                self._sanitize(results[net], ambient_txn)

    def _sanitize(self, outcome: RoutedNet, ambient_txn: bool) -> None:
        """Checked mode: sanitize one committed net, raise on violations.

        Runs the paper invariants of the net's own connections plus the
        grid bookkeeping audit (ledger replay, journal balance) through
        :func:`repro.check.sanitize_commit`; violations raise
        :class:`repro.check.CheckFailure` at the first bad commit
        instead of surfacing as mystery shorts later.
        """
        from repro.check import CheckFailure, sanitize_commit

        violations = sanitize_commit(
            self.tig.grid_of(outcome.net_id), outcome, in_ambient_txn=ambient_txn
        )
        if violations:
            raise CheckFailure(violations)

    def _pick_ripup_victims(
        self, net: Net, results: dict[Net, RoutedNet]
    ) -> list[Net]:
        """Routed nets crowding the failed net's terminals (at most 3).

        Victims are drawn from the failed net's *own plane*: ripping a
        net routed elsewhere cannot free the cells this net needs (an
        upper-plane net's through-stack blockage is terminal-anchored
        and survives its rip).
        """
        net_id = self._net_ids[net]
        plane = self.tig.plane_of(net_id)
        grid = self.tig.planes[plane]
        counts: dict[int, int] = {}
        for term in self.tig.terminals_of(net_id):
            for owner in grid.owners_near(term.v_idx, term.h_idx, radius=2):
                if owner != net_id and self.tig.plane_of(owner) == plane:
                    counts[owner] = counts.get(owner, 0) + 1
        by_id = {self._net_ids[n]: n for n in self.nets}
        ranked = sorted(counts, key=lambda o: (-counts[o], o))
        victims = []
        for owner in ranked:
            victim = by_id.get(owner)
            if victim is not None and victim in results:
                victims.append(victim)
            if len(victims) == 3:
                break
        return victims

    def unroute(self, net: Net) -> None:
        """Rip one net's wiring, leaving its terminals reserved.

        The public face of :meth:`_unroute_net` for the iterative
        driver (:mod:`repro.iterate`): after ripping every net the grid
        holds terminals only, exactly the state a fresh :meth:`route`
        starts from.  Callers must hold an open plane-set transaction
        (or accept that the rip is permanent).
        """
        self._unroute_net(net)

    def _unroute_net(self, net: Net) -> None:
        """Rip a net's wiring off the grid and re-reserve its terminals.

        ``rip_net`` replays the net's mutation ledger, so the cost is
        proportional to the cells the net actually occupied.  Only the
        net's own plane is ripped: its through-stack blockage on lower
        planes belongs to its terminals, which persist across rips.
        """
        net_id = self._net_ids[net]
        grid = self.tig.grid_of(net_id)
        # repro: allow[txn.commit] ambient transaction: callers hold explicit savepoints (grid.begin() in _refine, planes.begin() in probe) or run under the engine's `with grid.transaction():` scope
        grid.rip_net(net_id)
        for term in self.tig.terminals_of(net_id):
            grid.reserve_terminal(term.v_idx, term.h_idx, net_id)

    # ------------------------------------------------------------------
    def _route_net(self, net: Net) -> RoutedNet:
        net_id = self._net_ids[net]
        connections, failed = route_net_terminals(
            self.tig.grid_of(net_id),
            net_id,
            self.tig.terminals_of(net_id),
            lambda source, target: self._route_connection(net_id, source, target),
        )
        # Terminals a wide net's claim made unreachable never entered
        # the routable set; they count as failed from the outset.
        failed += len(self.tig.pinched_terminals(net_id))
        return RoutedNet(
            net=net,
            net_id=net_id,
            connections=connections,
            failed_terminals=failed,
            plane=self.tig.plane_of(net_id),
        )

    def _route_connection(
        self, net_id: int, source: GridTerminal, target: GridTerminal
    ) -> RoutedConnection | None:
        """One connection through the primary engine, rescue as needed."""
        conn = self._engine.route(self._ctx_for(net_id), net_id, source, target)
        if (
            conn is None
            and self.config.maze_fallback
            and self._engine.name != self.config.rescue_engine
        ):
            conn = self._maze_rescue(net_id, source, target)
        if conn is not None:
            instrument.count(CONNECTIONS_ROUTED)
        return conn

    def _maze_rescue(
        self, net_id: int, source: GridTerminal, target: GridTerminal
    ) -> RoutedConnection | None:
        """Last-resort whole-grid shot with the rescue engine.

        The rescued connection's cost is evaluated with the regular
        section 3.2 cost model (the engine prices the committed path
        with :class:`CornerCostEvaluator`), so rescue costs aggregate
        cleanly with MBFS costs; ``expansions_used == -1`` marks the
        rescue.
        """
        engine = self._rescue_engine()
        instrument.count(MAZE_FALLBACKS)
        with instrument.span(SPAN_MAZE_RESCUE):
            conn = engine.route(
                self._ctx_for(net_id), net_id, source, target, regions=(None,)
            )
        instrument.event(
            EVT_MAZE_FALLBACK, net_id=net_id, found=conn is not None
        )
        if conn is not None:
            conn.expansions_used = -1  # marks a maze rescue
        return conn

    def _regions(
        self, source: GridTerminal, target: GridTerminal
    ) -> Iterator[Region]:
        """Index-space search regions, smallest first, whole grid last."""
        cfg = self.config
        v_box = Interval.spanning(source.v_idx, target.v_idx)
        h_box = Interval.spanning(source.h_idx, target.h_idx)
        margin = cfg.region_margin_tracks
        for _ in range(cfg.max_region_expansions + 1):
            yield (v_box.expanded(margin), h_box.expanded(margin))
            margin *= cfg.region_growth
        yield None  # unbounded: the entire layout


def commit_points(
    grid,
    net_id: int,
    points: Sequence,
    corners: Iterable[tuple[int, int]],
) -> None:
    """Backwards-compatible alias for :meth:`RoutingGrid.commit_path`."""
    # repro: allow[txn.commit] pass-through shim: transaction scope is the caller's responsibility, exactly as for commit_path itself
    grid.commit_path(net_id, points, corners)
