"""Modified breadth-first search over the Track Intersection Graph.

Paper, section 3.1: for each two-terminal connection, *all* paths with
the minimum number of corners are found by two modified breadth-first
searches, one starting from each of the source terminal's two tracks.
The searches build **Path Selection Trees** whose nodes are track
visits; the best path is later chosen from these trees
(:mod:`repro.core.select`).

Key properties implemented here, matching the paper:

* A path is a sequence of alternating horizontal and vertical track
  segments; its corner count equals the number of track switches
  (the arrival at the target terminal is not a corner, so the example
  path ``(v2, h4, v6)`` of Figure 1 has exactly one corner).
* Each vertex (track) is *examined exactly once* - once a track has
  been reached at some BFS level it is not re-entered at a later
  level - **except the target vertices**, which may be entered at any
  level.  This excludes paths with more than one corner on the same
  track and is what makes the search fast.
* Several Path Selection Tree nodes may exist for the same track at
  the same level (one per distinct parent), which is how the trees of
  Figure 2 contain the vertex ``h4`` twice.
* The solution space of each search is a rectangular region around the
  two terminals; the caller widens the region and retries on failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import instrument
from repro.instrument.names import (
    MBFS_ABORTS,
    MBFS_NODES_EXPANDED,
    MBFS_SEARCHES,
    SPAN_MBFS_SEARCH,
)
from repro.geometry import Interval, Point
from repro.grid import RoutingGrid
from repro.core.tig import GridTerminal

VERTICAL = "V"
HORIZONTAL = "H"


@dataclass
class PSTNode:
    """One node of a Path Selection Tree: a visit to a track.

    Attributes
    ----------
    kind:
        ``"V"`` when the node is a vertical track, ``"H"`` horizontal.
    track:
        Index of the track in its track set.
    entry:
        Index on the *orthogonal* track set where the path entered this
        track (the entry intersection is ``(track, entry)`` for a
        vertical node and ``(entry, track)`` for a horizontal one).
    span:
        The maximal usable index interval along this track around the
        entry point - how far the wire can slide.  Computed lazily
        (``None`` until the node is expanded or tested for completion);
        most frontier-leaf nodes never need it.
    parent:
        The previous track visit (``None`` at a root).
    depth:
        Number of track switches from the root, i.e. the corner count
        of a path completed at this node.
    """

    kind: str
    track: int
    entry: int
    span: Interval | None
    parent: "PSTNode" | None
    depth: int
    children: list["PSTNode"] = field(default_factory=list, repr=False)

    @property
    def entry_intersection(self) -> tuple[int, int]:
        """The ``(v_idx, h_idx)`` where the path entered this track."""
        if self.kind == VERTICAL:
            return (self.track, self.entry)
        return (self.entry, self.track)

    def name(self) -> str:
        """Paper-style vertex name (``v3`` / ``h2``, 1-based)."""
        return f"{'v' if self.kind == VERTICAL else 'h'}{self.track + 1}"

    def chain(self) -> list["PSTNode"]:
        """Root-to-this node list."""
        nodes: list[PSTNode] = []
        node: PSTNode | None = self
        while node is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        return nodes

    def track_sequence(self) -> list[str]:
        """Paper-style track name sequence from the root."""
        return [n.name() for n in self.chain()]


@dataclass
class CandidatePath:
    """A reconstructed minimum-corner candidate for one connection."""

    points: list[Point]
    corners: list[tuple[int, int]]
    length: int
    leaf: PSTNode

    @property
    def corner_count(self) -> int:
        return len(self.corners)


@dataclass
class SearchResult:
    """Outcome of the two MBFS runs for one two-terminal connection."""

    source: GridTerminal
    target: GridTerminal
    roots: list[PSTNode]
    leaves: list[PSTNode]
    min_corners: int | None
    nodes_created: int
    aborted: bool = False

    @property
    def found(self) -> bool:
        return self.min_corners is not None


class MBFSearch:
    """One two-terminal search instance.

    Parameters
    ----------
    grid:
        The occupancy grid (the stored TIG).
    net_id:
        The routing net; its own wiring and reserved terminals count as
        usable space.
    source, target:
        The connection's terminals (TIG edges).
    region:
        Optional ``(v_interval, h_interval)`` *index-space* bounding
        region; it is expanded, if necessary, to contain both
        terminals.
    max_depth:
        Upper bound on corners considered (default 12).
    max_nodes:
        Safety cap on Path Selection Tree size; exceeded searches
        report ``aborted`` (default 250_000).
    max_entries_per_track:
        Cap on same-level duplicate entries kept per track; keeps the
        PSTs small while retaining path diversity (default 8).
    """

    def __init__(
        self,
        grid: RoutingGrid,
        net_id: int,
        source: GridTerminal,
        target: GridTerminal,
        region: tuple[Interval, Interval] | None = None,
        max_depth: int = 12,
        max_nodes: int = 250_000,
        max_entries_per_track: int = 8,
    ) -> None:
        self.grid = grid
        self.net_id = net_id
        self.source = source
        self.target = target
        self.max_depth = max_depth
        self.max_nodes = max_nodes
        self.max_entries_per_track = max_entries_per_track
        if region is None:
            v_iv = Interval(0, grid.num_vtracks - 1)
            h_iv = Interval(0, grid.num_htracks - 1)
        else:
            v_iv, h_iv = region
            v_iv = grid.vtracks.clip_indices(
                v_iv.hull(Interval.spanning(source.v_idx, target.v_idx))
            )
            h_iv = grid.htracks.clip_indices(
                h_iv.hull(Interval.spanning(source.h_idx, target.h_idx))
            )
        self.v_region = v_iv
        self.h_region = h_iv
        self._nodes_created = 0
        self._aborted = False

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run both searches and keep the global minimum-corner leaves.

        Search effort is tallied locally (``self._nodes_created``) and
        reported to the instrumentation collector in one batch here, so
        the per-node expansion loop carries no observability cost.
        """
        roots: list[PSTNode] = []
        all_leaves: list[tuple[int, list[PSTNode]]] = []
        best_depth: int | None = None
        with instrument.span(SPAN_MBFS_SEARCH):
            for kind in (VERTICAL, HORIZONTAL):
                limit = self.max_depth if best_depth is None else best_depth
                root, leaves, depth = self._single_search(kind, limit)
                if root is not None:
                    roots.append(root)
                if depth is not None:
                    all_leaves.append((depth, leaves))
                    best_depth = (
                        depth if best_depth is None else min(best_depth, depth)
                    )
        leaves = [
            leaf for depth, group in all_leaves if depth == best_depth for leaf in group
        ]
        inst = instrument.active()
        if inst.enabled:
            inst.count(MBFS_SEARCHES)
            inst.count(MBFS_NODES_EXPANDED, self._nodes_created)
            if self._aborted:
                inst.count(MBFS_ABORTS)
        return SearchResult(
            source=self.source,
            target=self.target,
            roots=roots,
            leaves=leaves,
            min_corners=best_depth,
            nodes_created=self._nodes_created,
            aborted=self._aborted,
        )

    # ------------------------------------------------------------------
    def _single_search(
        self, root_kind: str, depth_limit: int
    ) -> tuple[PSTNode | None, list[PSTNode], int | None]:
        """One MBFS from one of the source's two tracks."""
        if root_kind == VERTICAL:
            track, entry = self.source.v_idx, self.source.h_idx
        else:
            track, entry = self.source.h_idx, self.source.v_idx
        root = PSTNode(
            kind=root_kind, track=track, entry=entry, span=None, parent=None, depth=0
        )
        if self._node_span(root) is None:
            return None, [], None
        self._nodes_created += 1
        # visited[(kind, track)] -> level at which the track was first
        # reached; target tracks are exempt and never recorded.
        visited: dict[tuple[str, int], int] = {(root_kind, track): 0}
        if self._completes(root):
            return root, [root], 0
        frontier = [root]
        level = 0
        while frontier and level < depth_limit:
            level += 1
            next_frontier: list[PSTNode] = []
            completions: list[PSTNode] = []
            entries_this_level: dict[tuple[str, int], int] = {}
            for node in frontier:
                children = self._expand(node, visited, entries_this_level, level)
                if children is None:  # node budget exhausted
                    self._aborted = True
                    return root, [], None
                for child in children:
                    if self._is_target_track(
                        child.kind, child.track
                    ) and self._completes(child):
                        completions.append(child)
                    next_frontier.append(child)
            if completions:
                return root, completions, level
            frontier = next_frontier
        return root, [], None

    def _node_span(self, node: PSTNode) -> Interval | None:
        """The node's slide interval, computed on first use."""
        if node.span is None:
            if node.kind == VERTICAL:
                node.span = self.grid.free_span_v(
                    node.track, node.entry, self.net_id, within=self.h_region
                )
            else:
                node.span = self.grid.free_span_h(
                    node.track, node.entry, self.net_id, within=self.v_region
                )
        return node.span

    def _expand(
        self,
        node: PSTNode,
        visited: dict[tuple[str, int], int],
        entries_this_level: dict[tuple[str, int], int],
        level: int,
    ) -> list[PSTNode] | None:
        """Children of ``node``: turns onto crossing tracks in its span.

        Corner availability along the whole span is checked in one
        vectorised pass; children are created without spans (lazy).
        """
        grid = self.grid
        net = self.net_id
        span = self._node_span(node)
        if span is None:  # entry cell got unusable - cannot happen mid-search
            return []
        child_kind = HORIZONTAL if node.kind == VERTICAL else VERTICAL
        if node.kind == VERTICAL:
            crossings = grid.corner_candidates_on_v(
                node.track, span.lo, span.hi, net
            )
        else:
            crossings = grid.corner_candidates_on_h(
                node.track, span.lo, span.hi, net
            )
        children: list[PSTNode] = []
        for cross in crossings:
            if cross == node.entry:
                continue
            key = (child_kind, cross)
            is_target = self._is_target_track(child_kind, cross)
            if not is_target:
                seen_level = visited.get(key)
                if seen_level is not None and seen_level < level:
                    continue
                if entries_this_level.get(key, 0) >= self.max_entries_per_track:
                    continue
                visited.setdefault(key, level)
                entries_this_level[key] = entries_this_level.get(key, 0) + 1
            child = PSTNode(
                kind=child_kind,
                track=cross,
                entry=node.track,
                span=None,
                parent=node,
                depth=node.depth + 1,
            )
            node.children.append(child)
            self._nodes_created += 1
            if self._nodes_created > self.max_nodes:
                return None
            children.append(child)
        return children

    def _is_target_track(self, kind: str, track: int) -> bool:
        if kind == VERTICAL:
            return track == self.target.v_idx
        return track == self.target.h_idx

    def _completes(self, node: PSTNode) -> bool:
        """Can the path slide along ``node``'s track onto the terminal?"""
        if node.kind == VERTICAL:
            if node.track != self.target.v_idx:
                return False
            span = self._node_span(node)
            return span is not None and span.contains(self.target.h_idx)
        if node.track != self.target.h_idx:
            return False
        span = self._node_span(node)
        return span is not None and span.contains(self.target.v_idx)


# ----------------------------------------------------------------------
# Path reconstruction
# ----------------------------------------------------------------------
def candidate_paths(
    result: SearchResult, grid: RoutingGrid
) -> list[CandidatePath]:
    """Geometric candidates for every minimum-corner leaf.

    Each candidate's point list runs source, corners..., target with
    consecutive points axis-aligned; duplicate consecutive points
    (a corner coinciding with a terminal) are merged.
    """
    out: list[CandidatePath] = []
    src = result.source.position(grid)
    dst = result.target.position(grid)
    for leaf in result.leaves:
        chain = leaf.chain()
        corners: list[tuple[int, int]] = []
        for parent, child in zip(chain, chain[1:]):
            if parent.kind == VERTICAL:
                corners.append((parent.track, child.track))
            else:
                corners.append((child.track, parent.track))
        points: list[Point] = [src]
        for v_idx, h_idx in corners:
            x, y = grid.coord_of(v_idx, h_idx)
            points.append(Point(x, y))
        points.append(dst)
        deduped = [points[0]]
        for p in points[1:]:
            if p != deduped[-1]:
                deduped.append(p)
        length = sum(a.manhattan_to(b) for a, b in zip(deduped, deduped[1:]))
        out.append(
            CandidatePath(points=deduped, corners=corners, length=length, leaf=leaf)
        )
    return out
