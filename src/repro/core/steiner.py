"""Multi-terminal net decomposition (section 3.3).

The paper routes multi-terminal nets with "a suboptimal algorithm that
approximates a rectilinear Steiner tree ... based on Prim's algorithm":
the output component grows one terminal at a time, and the terminal
selected is the one at minimum distance not only from component
*terminals* but also from **Steiner points** - any point on the
component's already-routed segments.  The selected terminal is then
connected to whichever component point it is closest to.

:class:`SteinerTreeBuilder` drives that loop incrementally: the level B
router asks for the next (source, attach-point) pair, routes it with
the regular two-terminal machinery, and commits the realised path back
into the component so later attachments can use its Steiner points.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.geometry import Point, Segment
from repro.grid import RoutingGrid
from repro.core.tig import GridTerminal


def dedupe_terminals(terminals: Sequence[GridTerminal]) -> list[GridTerminal]:
    """Unique terminals in first-seen order (coincident pins collapse)."""
    seen: set[GridTerminal] = set()
    out: list[GridTerminal] = []
    for t in terminals:
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out


@dataclass(frozen=True)
class AttachPoint:
    """A candidate connection target on the partially built tree."""

    terminal: GridTerminal
    distance: int
    on_segment: bool  # True: a Steiner point on routed wire; False: a terminal


class SteinerTreeBuilder:
    """Grows one net's routing tree terminal-by-terminal."""

    def __init__(
        self, grid: RoutingGrid, net_id: int, terminals: Sequence[GridTerminal]
    ) -> None:
        if len(terminals) < 2:
            raise ValueError("Steiner decomposition needs >= 2 terminals")
        self.grid = grid
        self.net_id = net_id
        self._all = list(terminals)
        self._points = {t: t.position(grid) for t in self._all}
        start = self._pick_start()
        self._connected: list[GridTerminal] = [start]
        self._remaining: list[GridTerminal] = [t for t in self._all if t is not start]
        self._tree_segments: list[Segment] = []
        self._failed: list[GridTerminal] = []

    def _pick_start(self) -> GridTerminal:
        """Deterministic start: the terminal nearest the pin centroid."""
        pts = list(self._points.values())
        cx = sum(p.x for p in pts) // len(pts)
        cy = sum(p.y for p in pts) // len(pts)
        centroid = Point(cx, cy)
        return min(
            self._all,
            key=lambda t: (self._points[t].manhattan_to(centroid), self._points[t]),
        )

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self._remaining

    @property
    def failed_terminals(self) -> list[GridTerminal]:
        return list(self._failed)

    def next_source(self) -> GridTerminal:
        """The unconnected terminal closest to the component (Prim step)."""
        if not self._remaining:
            raise RuntimeError("tree already complete")
        return min(
            self._remaining,
            key=lambda t: (self._distance_to_tree(self._points[t]), self._points[t]),
        )

    def attach_candidates(self, source: GridTerminal, limit: int = 6) -> list[GridTerminal]:
        """Connection targets for ``source``, nearest first.

        Candidates are Steiner points on routed segments (projected to
        the nearest track intersection and screened for corner
        availability) followed by already-connected terminals, deduped,
        capped at ``limit``.  Connected terminals always appear so a
        congested Steiner point cannot strand the net.
        """
        src_pt = self._points[source]
        cands: list[AttachPoint] = []
        for seg in self._tree_segments:
            attach = self._project_to_segment(src_pt, seg)
            if attach is None:
                continue
            if not self.grid.corner_free(attach.v_idx, attach.h_idx, self.net_id):
                continue
            dist = src_pt.manhattan_to(attach.position(self.grid))
            cands.append(AttachPoint(attach, dist, on_segment=True))
        for term in self._connected:
            dist = src_pt.manhattan_to(self._points[term])
            cands.append(AttachPoint(term, dist, on_segment=False))
        cands.sort(key=lambda a: (a.distance, a.on_segment, a.terminal.v_idx, a.terminal.h_idx))
        seen: set[GridTerminal] = set()
        out: list[GridTerminal] = []
        for cand in cands:
            if cand.terminal in seen or cand.terminal == source:
                continue
            seen.add(cand.terminal)
            out.append(cand.terminal)
            if len(out) >= limit:
                break
        # Guarantee at least the connected terminals survive the cap.
        for term in self._connected:
            if term not in seen and term != source:
                out.append(term)
                seen.add(term)
        return out

    def commit(self, source: GridTerminal, path_points: Sequence[Point]) -> None:
        """Record a successful connection's geometry into the component."""
        for a, b in zip(path_points, path_points[1:]):
            if a != b:
                self._tree_segments.append(Segment(a, b))
        self._remaining.remove(source)
        self._connected.append(source)

    def fail(self, source: GridTerminal) -> None:
        """Give up on a terminal (recorded, removed from the work list)."""
        self._remaining.remove(source)
        self._failed.append(source)

    # ------------------------------------------------------------------
    def _distance_to_tree(self, p: Point) -> int:
        best = min(self._points[t].manhattan_to(p) for t in self._connected)
        for seg in self._tree_segments:
            box = seg.bounds
            cx = box.x_interval.clamp(p.x)
            cy = box.y_interval.clamp(p.y)
            best = min(best, abs(p.x - cx) + abs(p.y - cy))
        return best

    def _project_to_segment(self, p: Point, seg: Segment) -> GridTerminal | None:
        """Nearest track intersection to ``p`` on segment ``seg``."""
        vtracks, htracks = self.grid.vtracks, self.grid.htracks
        if seg.is_point:
            return None
        if seg.is_horizontal:
            span = seg.span
            idxs = vtracks.index_range(span.lo, span.hi)
            if len(idxs) == 0:
                return None
            v_idx = _nearest_in_range(vtracks.coords, idxs, p.x)
            return GridTerminal(v_idx=v_idx, h_idx=htracks.index_of(seg.a.y))
        span = seg.span
        idxs = htracks.index_range(span.lo, span.hi)
        if len(idxs) == 0:
            return None
        h_idx = _nearest_in_range(htracks.coords, idxs, p.y)
        return GridTerminal(v_idx=vtracks.index_of(seg.a.x), h_idx=h_idx)


def _nearest_in_range(coords: Sequence[int], idxs: range, value: int) -> int:
    """Index in ``idxs`` whose coordinate is nearest ``value``."""
    import bisect

    pos = bisect.bisect_left(coords, value, idxs.start, idxs.stop)
    best_idx = idxs.start
    best_d = abs(coords[best_idx] - value)
    for candidate in (pos - 1, pos):
        if idxs.start <= candidate < idxs.stop:
            d = abs(coords[candidate] - value)
            if d < best_d:
                best_d = d
                best_idx = candidate
    return best_idx
