"""The plane-assignment pass: distribute level B nets across planes.

With more than one over-cell plane the router must decide, before any
wiring exists, which reserved-layer pair each net will route on.  The
pass here is static and deterministic — a congestion-estimate greedy in
the spirit of the paper's net ordering:

1. Nets are visited longest (bounding-box half-perimeter) first, ties
   broken by net id.  Long nets benefit most from the emptier upper
   planes (the paper routes "long distance interconnections ... using
   wider lines"), and visiting them first lets the short nets fill the
   gaps on plane 0 around them.
2. Each plane keeps a coarse demand map (a ``BINS_X x BINS_Y`` grid of
   accumulated estimated wire density).  A net's candidate cost on a
   plane is the mean demand already accumulated over its bounding box,
   plus a via-stack penalty that grows with the plane's altitude and
   the net's pin count — the same ``plane_via_weight *
   stack_via_depth`` pricing the routing cost function applies later
   (see :class:`~repro.core.cost.CornerCostEvaluator.base_cost`), so
   assignment and routing judge altitude consistently.
3. The net takes the cheapest plane (ties go to the lowest), then adds
   its own estimated demand (half-perimeter spread uniformly over its
   box) to that plane's map.

With ``num_planes == 1`` every net is trivially assigned plane 0 and
the pass is free, which is part of the single-plane parity guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro import instrument
from repro.instrument.names import EVT_PLANE_ASSIGNED
from repro.geometry import Point, Rect

__all__ = ["NetDemand", "assign_planes"]

#: Demand-map resolution.  Coarse on purpose: the estimate only has to
#: rank planes, and a fine map would ask more precision of a
#: pre-routing guess than it can deliver.
BINS_X = 16
BINS_Y = 12


@dataclass(frozen=True)
class NetDemand:
    """What the assignment pass needs to know about one net."""

    net_id: int
    pins: tuple[Point, ...]

    @property
    def bbox(self) -> tuple[int, int, int, int]:
        xs = [p.x for p in self.pins]
        ys = [p.y for p in self.pins]
        return (min(xs), min(ys), max(xs), max(ys))

    @property
    def half_perimeter(self) -> int:
        x1, y1, x2, y2 = self.bbox
        return (x2 - x1) + (y2 - y1)

    @property
    def degree(self) -> int:
        return len(self.pins)


def _bin_box(
    bbox: tuple[int, int, int, int], bounds: Rect
) -> tuple[int, int, int, int]:
    """The demand-map bin rectangle covering a net's bounding box."""
    w = max(1, bounds.x2 - bounds.x1)
    h = max(1, bounds.y2 - bounds.y1)
    x1, y1, x2, y2 = bbox
    bx1 = min(BINS_X - 1, max(0, (x1 - bounds.x1) * BINS_X // w))
    bx2 = min(BINS_X - 1, max(0, (x2 - bounds.x1) * BINS_X // w))
    by1 = min(BINS_Y - 1, max(0, (y1 - bounds.y1) * BINS_Y // h))
    by2 = min(BINS_Y - 1, max(0, (y2 - bounds.y1) * BINS_Y // h))
    return bx1, by1, bx2, by2


def assign_planes(
    nets: Sequence[NetDemand],
    bounds: Rect,
    num_planes: int,
    via_weight: float,
) -> dict[int, int]:
    """Map every net id to an over-cell plane (0-based, 0 = lowest)."""
    if num_planes < 1:
        raise ValueError(f"need at least one plane, got {num_planes}")
    if num_planes == 1:
        return {n.net_id: 0 for n in nets}
    demand = [
        [[0.0] * BINS_X for _ in range(BINS_Y)] for _ in range(num_planes)
    ]
    assignment: dict[int, int] = {}
    ordered = sorted(nets, key=lambda n: (-n.half_perimeter, n.net_id))
    for net in ordered:
        bx1, by1, bx2, by2 = _bin_box(net.bbox, bounds)
        nbins = (bx2 - bx1 + 1) * (by2 - by1 + 1)
        best_plane = 0
        best_cost = float("inf")
        for plane in range(num_planes):
            overlap = sum(
                demand[plane][by][bx]
                for by in range(by1, by2 + 1)
                for bx in range(bx1, bx2 + 1)
            ) / nbins
            # 2 * plane extra via levels per pin stack — the same
            # altitude pricing CornerCostEvaluator.base_cost applies.
            cost = overlap + via_weight * 2 * plane * net.degree
            if cost < best_cost:
                best_cost = cost
                best_plane = plane
        assignment[net.net_id] = best_plane
        density = net.half_perimeter / nbins
        plane_map = demand[best_plane]
        for by in range(by1, by2 + 1):
            for bx in range(bx1, bx2 + 1):
                plane_map[by][bx] += density
        if best_plane:
            instrument.event(
                EVT_PLANE_ASSIGNED,
                net_id=net.net_id,
                plane=best_plane,
                half_perimeter=net.half_perimeter,
            )
    return assignment
