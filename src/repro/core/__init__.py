"""The paper's primary contribution: the level B over-cell router.

The router solves the two-dimensional routing problem over the whole
layout (between-cell *and* over-cell areas) on the reserved over-cell
planes — the paper's metal3/metal4 pair by default, or any number of
stacked pairs via ``LevelBConfig.planes`` (docs/LAYERS.md):

* :mod:`repro.core.tig` - the Track Intersection Graph solution-space
  representation (bipartite: vertical tracks vs. horizontal tracks,
  edges are usable intersections) and grid terminals.
* :mod:`repro.core.search` - the modified breadth-first search (MBFS)
  that finds *all* minimum-corner paths for a two-terminal connection
  and records them in Path Selection Trees.
* :mod:`repro.core.cost` - the corner cost model
  ``C = w1*wl + sum_j(w21*drg_j + w22*dup_j + w23*acf_j)``.
* :mod:`repro.core.select` - backtracking (depth-first with bounding)
  over the Path Selection Trees to pick the cheapest candidate.
* :mod:`repro.core.steiner` - the Steiner-Prim decomposition of
  multi-terminal nets into two-terminal connections.
* :mod:`repro.core.ordering` - serial net ordering (longest distance
  first by default, user criteria supported).
* :mod:`repro.core.assign` - the static plane-assignment pass that
  distributes nets across over-cell planes by estimated congestion.
* :mod:`repro.core.engine` - the :class:`ConnectionEngine` protocol
  (search -> candidates -> select -> commit) with a name registry; the
  MBFS/PST engine lives here, the Lee engine in :mod:`repro.maze.lee`.
* :mod:`repro.core.router` - the :class:`LevelBRouter` orchestrator:
  net ordering, Steiner decomposition, rip-up, refinement - thin
  sequencing over engines and grid transactions.
"""

from repro.core.tig import GridTerminal, TrackIntersectionGraph
from repro.core.assign import NetDemand, assign_planes
from repro.core.cost import CostWeights
from repro.core.search import MBFSearch, PSTNode, SearchResult
from repro.core.select import select_best_path
from repro.core.ordering import NetOrdering, order_nets
from repro.core.engine import (
    ConnectionEngine,
    EngineContext,
    MBFSEngine,
    RoutedConnection,
    available_engines,
    get_engine,
    register_engine,
)
from repro.core.router import LevelBConfig, LevelBResult, LevelBRouter, RoutedNet

__all__ = [
    "GridTerminal",
    "TrackIntersectionGraph",
    "NetDemand",
    "assign_planes",
    "CostWeights",
    "MBFSearch",
    "PSTNode",
    "SearchResult",
    "select_best_path",
    "NetOrdering",
    "order_nets",
    "ConnectionEngine",
    "EngineContext",
    "MBFSEngine",
    "RoutedConnection",
    "available_engines",
    "get_engine",
    "register_engine",
    "LevelBConfig",
    "LevelBResult",
    "LevelBRouter",
    "RoutedNet",
]
