"""The Track Intersection Graph (TIG).

Paper, section 3.1: *"The solution space for level B routing is
represented by an undirected bipartite graph G = (V, E) called Track
Intersection Graph.  The set of vertices V consists of two mutually
exclusive subsets Vv and Vh, where each vi in Vv represents a vertical
routing track and each vj in Vh represents a horizontal track.  The
edges e = (vi, vj) correspond to the intersection of a vertical with a
horizontal track that can be used for routing."*

The graph is stored implicitly: its state lives in the ``O(h*v)``
occupancy array (:class:`repro.grid.RoutingGrid`), exactly as the paper
describes in section 3.4.  This module provides the graph-level view on
top of that array - vertex/edge enumeration for small instances, the
terminal abstraction (a terminal *is* a TIG edge), and obstacle
registration - while the search (:mod:`repro.core.search`) reads the
array directly for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from repro.geometry import Point, Rect
from repro.grid import FREE, PlaneSet, RoutingGrid, TrackSet


@dataclass(frozen=True)
class GridTerminal:
    """A net terminal expressed as a TIG edge ``(vertical, horizontal)``.

    ``v_idx``/``h_idx`` index the grid's vertical/horizontal track sets;
    the terminal sits at their intersection.
    """

    v_idx: int
    h_idx: int

    def position(self, grid: RoutingGrid) -> Point:
        x, y = grid.coord_of(self.v_idx, self.h_idx)
        return Point(x, y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(v{self.v_idx},h{self.h_idx})"


class TrackIntersectionGraph:
    """Tracks, occupancy and terminals for one level B instance.

    Vertex naming follows the paper's figures: vertical tracks are
    ``v1..vn`` (left to right), horizontal tracks ``h1..hm`` (bottom to
    top), both 1-based.
    """

    def __init__(
        self,
        vtracks: TrackSet,
        htracks: TrackSet,
        num_planes: int = 1,
        backend: str = "dense",
    ) -> None:
        #: One occupancy grid per over-cell plane, shared track sets.
        self.planes = PlaneSet(vtracks, htracks, num_planes, backend=backend)
        #: Plane 0's grid — the paper's metal3/metal4 array.  Kept as a
        #: direct attribute because the single-plane stack (the default)
        #: reads and mutates it everywhere.
        self.grid: RoutingGrid = self.planes[0]
        self._terminals: dict[int, list[GridTerminal]] = {}
        # Terminals whose intersection a wide net's expanded claim
        # already covers (see register_terminal): recorded but never
        # reserved or routed, counted as failed by the router.
        self._pinched: dict[int, list[GridTerminal]] = {}
        self._plane_of: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def over_area(
        bounds: Rect,
        v_pitch: int,
        h_pitch: int,
        terminal_points: Iterable[Point] = (),
        num_planes: int = 1,
        backend: str = "dense",
    ) -> "TrackIntersectionGraph":
        """Build the grid over ``bounds``.

        A uniform lattice at the given pitches is laid down, then one
        vertical and one horizontal track is threaded through every
        terminal (the paper assigns "a pair of horizontal and vertical
        tracks to each net terminal").  With ``num_planes > 1`` every
        over-cell plane shares this lattice (see
        :class:`repro.grid.PlaneSet` for why).
        """
        pts = list(terminal_points)
        vtracks = TrackSet.uniform(
            bounds.x1, bounds.x2, v_pitch, extra=(p.x for p in pts)
        )
        htracks = TrackSet.uniform(
            bounds.y1, bounds.y2, h_pitch, extra=(p.y for p in pts)
        )
        return TrackIntersectionGraph(
            vtracks, htracks, num_planes, backend=backend
        )

    def terminal_at(self, point: Point) -> GridTerminal:
        """The TIG edge for a terminal at geometric ``point``.

        The tracks through the point must exist (``over_area`` threads
        them); a miss indicates an upstream bookkeeping bug and raises.
        """
        return GridTerminal(
            v_idx=self.grid.vtracks.index_of(point.x),
            h_idx=self.grid.htracks.index_of(point.y),
        )

    def register_terminal(
        self, net_id: int, terminal: GridTerminal, plane: int = 0
    ) -> None:
        """Reserve a terminal's intersection for ``net_id`` on ``plane``.

        The terminal's via stack climbs from the cell pins all the way
        to its net's plane, so besides reserving the intersection on
        the routing plane it *blocks* the same intersection on every
        plane below: the through-stack physically occupies those
        layers.  On plane 0 (the only plane of the default stack) no
        blockage is issued and the call is exactly the historical one.

        A terminal whose intersection (on the routing plane or any
        stack level below) is already inside a *wide* net's expanded
        claim cannot be reserved: pins sit at fixed physical positions
        the width model cannot move.  Such pinched terminals are
        recorded separately — the router skips them and counts them as
        failed — instead of raising, which would kill the whole run
        over one unroutable pin.  A collision with a single-track net
        still raises: distinct pins always get distinct tracks, so
        that can only be a genuine design conflict.
        """
        if self._pinched_by_wide(net_id, terminal, plane):
            self._pinched.setdefault(net_id, []).append(terminal)
            return
        self.planes[plane].reserve_terminal(
            terminal.v_idx, terminal.h_idx, net_id
        )
        for below in range(plane):
            self.planes[below].occupy_corner(
                terminal.v_idx, terminal.h_idx, net_id
            )
        self._terminals.setdefault(net_id, []).append(terminal)

    def _pinched_by_wide(
        self, net_id: int, terminal: GridTerminal, plane: int
    ) -> bool:
        """Is the terminal's stack blocked by a wide net's footprint?"""
        v, h = terminal.v_idx, terminal.h_idx
        for p in range(plane + 1):
            grid = self.planes[p]
            for owner in (grid.h_slot(v, h), grid.v_slot(v, h)):
                if owner in (FREE, net_id):
                    continue
                if owner > 0 and grid.footprint_of(owner) != (1, 0):
                    return True
        return False

    def register_net(
        self,
        net_id: int,
        points: Sequence[Point],
        plane: int = 0,
        footprint: tuple[int, int] = (1, 0),
    ) -> list[GridTerminal]:
        """Register all terminals of a net by geometric position.

        ``footprint`` is the net's ``(span, guard)`` track claim from
        its width class (:meth:`~repro.technology.Technology.
        net_footprint`); it is declared on the net's *own* plane grid
        before any terminal is reserved, so the terminal anchors claim
        the widened block there.  Pass-through via stacks on the planes
        below stay point claims — a stack is a point feature, and
        widening it would let unrelated nets' stacks collide at fixed
        pin positions.
        """
        self._plane_of[net_id] = plane
        if footprint != (1, 0):
            span, guard = footprint
            self.planes[plane].set_net_footprint(net_id, span, guard)
        terminals = [self.terminal_at(p) for p in points]
        for t in terminals:
            self.register_terminal(net_id, t, plane)
        return terminals

    def plane_of(self, net_id: int) -> int:
        """The over-cell plane a registered net routes on (default 0)."""
        return self._plane_of.get(net_id, 0)

    def grid_of(self, net_id: int) -> RoutingGrid:
        """The occupancy grid of a registered net's plane."""
        return self.planes[self.plane_of(net_id)]

    def add_obstacle(
        self, rect: Rect, *, block_h: bool = True, block_v: bool = True
    ) -> int:
        """Exclude an over-cell area from routing (see paper section 3).

        Obstacles model pre-existing wiring inside macros (block a
        single direction) or user-excluded areas over sensitive
        circuits (block both).  Absent per-plane obstacle input the
        exclusion is conservative and applies to *every* plane of the
        stack.  Returns the blocked intersection count (per plane).
        """
        return self.planes.add_obstacle(rect, block_h=block_h, block_v=block_v)

    # ------------------------------------------------------------------
    # Graph-level queries (used by tests, figures and small instances)
    # ------------------------------------------------------------------
    def terminals_of(self, net_id: int) -> list[GridTerminal]:
        return list(self._terminals.get(net_id, []))

    def pinched_terminals(self, net_id: int) -> list[GridTerminal]:
        """Terminals a wide net's claim made unreachable (usually none)."""
        return list(self._pinched.get(net_id, []))

    def all_terminals(self) -> dict[int, list[GridTerminal]]:
        return {k: list(v) for k, v in self._terminals.items()}

    def vertex_names(self) -> tuple[list[str], list[str]]:
        """The paper-style vertex names ``([v1..], [h1..])``."""
        vs = [f"v{i + 1}" for i in range(self.grid.num_vtracks)]
        hs = [f"h{j + 1}" for j in range(self.grid.num_htracks)]
        return vs, hs

    def edge_usable(self, v_idx: int, h_idx: int, net_id: int = FREE) -> bool:
        """Is the TIG edge (intersection) usable for routing?

        With the default ``net_id`` of ``FREE`` only fully free
        intersections qualify; passing a net id also admits
        intersections that net already owns.
        """
        if net_id == FREE:
            return (
                self.grid.h_slot(v_idx, h_idx) == FREE
                and self.grid.v_slot(v_idx, h_idx) == FREE
            )
        return self.grid.corner_free(v_idx, h_idx, net_id)

    def edges(self, net_id: int = FREE) -> Iterator[tuple[int, int]]:
        """All usable TIG edges as ``(v_idx, h_idx)`` pairs.

        Enumeration is ``O(h*v)``; intended for small didactic
        instances, figures and tests, not the router hot path.
        """
        for v in range(self.grid.num_vtracks):
            for h in range(self.grid.num_htracks):
                if self.edge_usable(v, h, net_id):
                    yield (v, h)

    def degree(self, vertex: str) -> int:
        """Degree of a named vertex (``"v3"`` / ``"h2"``) in the TIG."""
        kind, idx = vertex[0], int(vertex[1:]) - 1
        if kind == "v":
            return sum(
                1
                for h in range(self.grid.num_htracks)
                if self.edge_usable(idx, h)
            )
        if kind == "h":
            return sum(
                1
                for v in range(self.grid.num_vtracks)
                if self.edge_usable(v, idx)
            )
        raise ValueError(f"bad vertex name {vertex!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TIG({self.grid.num_vtracks} v-tracks x "
            f"{self.grid.num_htracks} h-tracks, "
            f"{len(self._terminals)} nets registered)"
        )
