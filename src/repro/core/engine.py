"""Pluggable connection engines: search -> candidates -> select -> commit.

The level B orchestrator (:class:`repro.core.router.LevelBRouter`)
routes one two-terminal connection at a time.  *How* a connection is
found is an engine concern, expressed by the
:class:`ConnectionEngine` protocol; the orchestrator only sequences
nets, decomposes multi-terminal trees, escalates regions, rips up and
refines.  Two engines ship with the package:

``"mbfs"`` (:class:`MBFSEngine`, this module)
    The paper's modified breadth-first search over the Track
    Intersection Graph plus Path Selection Tree backtracking
    (sections 3.1-3.2) - fast, minimum-corner, but incomplete on
    congested grids.
``"lee"`` (:class:`repro.maze.lee.LeeEngine`)
    Lee/Dijkstra wave expansion - complete within a region, used both
    as a standalone baseline and as the rescue engine behind the
    ``maze_fallback`` config knob.

Engines are looked up by name through a registry; the ``"lee"`` entry
loads lazily via :mod:`importlib` so the core package never imports
the maze package (the old router <-> maze import cycle is gone).

Every engine commits selected paths through
:meth:`repro.grid.RoutingGrid.commit_path` inside a
:meth:`~repro.grid.RoutingGrid.transaction`, so a commit that fails
mid-path rolls back cleanly and the ``txn.*`` counters account for all
wiring mutations uniformly.
"""

from __future__ import annotations

import abc
import importlib
from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro import instrument
from repro.instrument.names import REGION_EXPANSIONS
from repro.geometry import Interval, Path, Point
from repro.grid import RoutingGrid
from repro.core.cost import CornerCostEvaluator
from repro.core.search import MBFSearch, candidate_paths
from repro.core.select import select_best_path
from repro.core.tig import GridTerminal

#: A bounded search region in index space, or ``None`` for the whole grid.
Region = tuple[Interval, Interval] | None


@dataclass
class RoutedConnection:
    """One committed two-terminal connection."""

    source: GridTerminal
    target: GridTerminal
    path: Path
    corners: list[tuple[int, int]]
    cost: float
    expansions_used: int

    @property
    def wire_length(self) -> int:
        return self.path.length

    @property
    def corner_count(self) -> int:
        return len(self.corners)


@dataclass(frozen=True)
class EngineContext:
    """Everything an engine needs from the orchestrator.

    Attributes
    ----------
    grid:
        The occupancy grid (the stored TIG) to search and commit on.
    config:
        The router's :class:`~repro.core.router.LevelBConfig`; engines
        read their tuning knobs (search caps, penalties) from it.
    evaluator:
        ``evaluator(net_id)`` builds a fresh
        :class:`~repro.core.cost.CornerCostEvaluator` carrying the
        net's cost-function extension terms.  Engines must create one
        per connection (the memo assumes a frozen grid).
    regions:
        ``regions(source, target)`` yields the escalating search
        regions, smallest first, whole grid (``None``) last.
    add_nodes:
        Search-effort callback; engines report nodes created/expanded
        so the orchestrator can aggregate them into the result.
    """

    grid: RoutingGrid
    config: object
    evaluator: Callable[[int], CornerCostEvaluator]
    regions: Callable[[GridTerminal, GridTerminal], Iterable[Region]]
    add_nodes: Callable[[int], None]


class ConnectionEngine(abc.ABC):
    """The search -> candidates -> select -> commit contract.

    An engine either returns a committed :class:`RoutedConnection` or
    ``None`` with the grid untouched.  Engines are stateless apart from
    construction-time tuning and may be shared across nets.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @classmethod
    def from_config(cls, config: object) -> "ConnectionEngine":
        """Build an instance from a router config (default: no args)."""
        return cls()

    @abc.abstractmethod
    def route(
        self,
        ctx: EngineContext,
        net_id: int,
        source: GridTerminal,
        target: GridTerminal,
        regions: Iterable[Region] | None = None,
    ) -> RoutedConnection | None:
        """Route and commit one connection, or return ``None``.

        ``regions`` overrides the context's escalation schedule (the
        rescue path passes ``(None,)`` for a single whole-grid shot).
        """


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[ConnectionEngine]] = {}
# Engines living outside repro.core load on first lookup, keeping the
# dependency arrow strictly maze -> core.
_LAZY: dict[str, str] = {"lee": "repro.maze.lee"}


def register_engine(cls: type[ConnectionEngine]) -> type[ConnectionEngine]:
    """Class decorator: add a :class:`ConnectionEngine` to the registry."""
    if not cls.name:
        raise ValueError(f"engine class {cls.__name__} must set a name")
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> list[str]:
    """Names resolvable by :func:`get_engine` (registered or lazy)."""
    return sorted(set(_REGISTRY) | set(_LAZY))


def get_engine(name: str) -> type[ConnectionEngine]:
    """Resolve an engine class by registry name."""
    if name not in _REGISTRY and name in _LAZY:
        importlib.import_module(_LAZY[name])
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown connection engine {name!r}; "
            f"available: {available_engines()}"
        ) from None


# ----------------------------------------------------------------------
# The MBFS / Path Selection Tree engine (paper sections 3.1-3.2)
# ----------------------------------------------------------------------
@register_engine
class MBFSEngine(ConnectionEngine):
    """Minimum-corner routing via MBFS + PST backtracking selection."""

    name = "mbfs"

    def route(
        self,
        ctx: EngineContext,
        net_id: int,
        source: GridTerminal,
        target: GridTerminal,
        regions: Iterable[Region] | None = None,
    ) -> RoutedConnection | None:
        if source == target:
            return None
        grid = ctx.grid
        cfg = ctx.config
        evaluator = ctx.evaluator(net_id)
        if regions is None:
            regions = ctx.regions(source, target)
        for attempt, region in enumerate(regions):
            if attempt:
                instrument.count(REGION_EXPANSIONS)
            search = MBFSearch(
                grid,
                net_id,
                source,
                target,
                region=region,
                max_depth=cfg.max_depth,
                max_nodes=cfg.max_nodes_per_search,
                max_entries_per_track=cfg.max_entries_per_track,
            )
            outcome = search.run()
            ctx.add_nodes(outcome.nodes_created)
            if not outcome.found:
                continue
            cands = candidate_paths(outcome, grid)
            best, cost = select_best_path(cands, evaluator)
            if best is None:
                continue
            with grid.transaction():
                grid.commit_path(net_id, best.points, best.corners)
            return RoutedConnection(
                source=source,
                target=target,
                path=Path.from_points(best.points)
                if len(best.points) >= 2
                else Path.from_points([best.points[0], best.points[0]]),
                corners=best.corners,
                cost=cost,
                expansions_used=attempt,
            )
        return None


def path_length(points: Iterable[Point]) -> int:
    """Manhattan length of a waypoint sequence (engine helper)."""
    pts = list(points)
    return sum(a.manhattan_to(b) for a, b in zip(pts, pts[1:]))
