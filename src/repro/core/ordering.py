"""Serial net ordering for level B routing.

The paper processes nets serially, ordered by a *longest distance*
criterion, with "the option of a user specified ordering criterion,
such as net criticality".  The orderings here are total and
deterministic (net name breaks ties) so routing runs reproduce exactly.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable

from repro.netlist import Net


class NetOrdering(enum.Enum):
    """Built-in ordering criteria."""

    LONGEST_FIRST = "longest-first"
    SHORTEST_FIRST = "shortest-first"
    MOST_PINS_FIRST = "most-pins-first"
    CRITICAL_FIRST = "critical-first"
    NAME = "name"


def order_nets(
    nets: Iterable[Net],
    criterion: NetOrdering = NetOrdering.LONGEST_FIRST,
    key: Callable[[Net], object] | None = None,
) -> list[Net]:
    """Order ``nets`` for serial routing.

    ``criterion`` selects a built-in ordering; passing ``key`` instead
    applies a user criterion (smaller keys route first), matching the
    paper's user-specified ordering option.
    """
    nets = list(nets)
    if key is not None:
        return sorted(nets, key=lambda n: (key(n), n.name))
    if criterion is NetOrdering.LONGEST_FIRST:
        return sorted(nets, key=lambda n: (-n.half_perimeter, n.name))
    if criterion is NetOrdering.SHORTEST_FIRST:
        return sorted(nets, key=lambda n: (n.half_perimeter, n.name))
    if criterion is NetOrdering.MOST_PINS_FIRST:
        return sorted(nets, key=lambda n: (-n.degree, -n.half_perimeter, n.name))
    if criterion is NetOrdering.CRITICAL_FIRST:
        return sorted(
            nets,
            key=lambda n: (not n.is_critical, -n.weight, -n.half_perimeter, n.name),
        )
    if criterion is NetOrdering.NAME:
        return sorted(nets, key=lambda n: n.name)
    raise ValueError(f"unknown ordering {criterion!r}")
