"""Parallel-run (coupling) analysis and the extra cost term.

Paper, section 3.2: *"Additional terms can be included in the cost
function for nets with special constraints, for example, to prevent
parallel routing of sensitive nets."*  This module provides both
halves of that sentence:

* :class:`ParallelRunPenalty` - a :class:`PathCostTerm` that charges a
  candidate path for every grid cell where one of its segments runs
  parallel to a *sensitive* net's wiring within a configurable track
  separation;
* :func:`parallel_exposure` - the matching analysis metric: the total
  parallel-adjacent cell count between a net's wiring and a set of
  sensitive nets, used by tests and the coupling ablation.

Only same-direction adjacency counts: a wire crossing a sensitive wire
at right angles couples over a single point and is ignored, exactly as
the paper's capacitive-coupling concern ("wires running parallel, one
on top of the other, over relatively long distances") suggests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.geometry import Point
from repro.grid import RoutingGrid


class PathCostTerm(ABC):
    """A user cost-function extension, evaluated per candidate path."""

    @abstractmethod
    def cost(
        self,
        grid: RoutingGrid,
        points: Sequence[Point],
        corners: Sequence[tuple[int, int]],
    ) -> float:
        """Non-negative extra cost of the candidate.

        ``points`` is the waypoint list (terminals and corners);
        ``corners`` the corner index pairs.  Must not mutate the grid.
        """


class ParallelRunPenalty(PathCostTerm):
    """Penalise running parallel and close to protected wiring.

    ``targets`` names the net ids to stay away from; ``None`` means
    *all* foreign wiring, which is the form a sensitive net's own
    connections use (it must keep clear of everyone).  ``exclude`` is
    the routing net's own id (never penalised).  ``weight`` is the cost
    per parallel-adjacent cell; ``separation`` the number of
    neighbouring tracks on each side that count as "close" (1 =
    immediately adjacent tracks only).
    """

    def __init__(
        self,
        targets: Iterable[int] | None,
        weight: float = 20.0,
        separation: int = 1,
        exclude: int = 0,
    ) -> None:
        if weight < 0:
            raise ValueError("weight must be non-negative")
        if separation < 1:
            raise ValueError("separation must be >= 1")
        self.targets: set[int] | None = (
            None if targets is None else {int(i) for i in targets}
        )
        self.weight = weight
        self.separation = separation
        self.exclude = exclude

    def _hit(self, owner: int) -> bool:
        if owner <= 0 or owner == self.exclude:
            return False
        return self.targets is None or owner in self.targets

    def cost(self, grid, points, corners):
        if self.targets is not None and not self.targets:
            return 0.0
        cells = 0
        for a, b in zip(points, points[1:]):
            if a == b:
                continue
            cells += self._adjacent_cells(grid, a, b)
        return self.weight * float(cells)

    def _adjacent_cells(self, grid: RoutingGrid, a: Point, b: Point) -> int:
        """Parallel-adjacent protected cells along segment ``a``-``b``."""
        count = 0
        if a.y == b.y:  # horizontal segment: neighbouring h-tracks
            h_idx = grid.htracks.index_of(a.y)
            v_rng = grid.vtracks.index_range(min(a.x, b.x), max(a.x, b.x))
            for dh in range(1, self.separation + 1):
                for nb in (h_idx - dh, h_idx + dh):
                    if not 0 <= nb < grid.num_htracks:
                        continue
                    # repro: allow[txn.mutate] cost-fn hot path: per-candidate snapshot() copies would be O(grid) per probe; dense read-only slice is safe under the dense default backend this cost model requires
                    row = grid._h_owner[nb, v_rng.start : v_rng.stop].tolist()
                    count += sum(1 for owner in row if self._hit(owner))
        else:  # vertical segment: neighbouring v-tracks
            v_idx = grid.vtracks.index_of(a.x)
            h_rng = grid.htracks.index_range(min(a.y, b.y), max(a.y, b.y))
            for dv in range(1, self.separation + 1):
                for nb in (v_idx - dv, v_idx + dv):
                    if not 0 <= nb < grid.num_vtracks:
                        continue
                    # repro: allow[txn.mutate] cost-fn hot path: per-candidate snapshot() copies would be O(grid) per probe; dense read-only slice is safe under the dense default backend this cost model requires
                    row = grid._v_owner[nb, h_rng.start : h_rng.stop].tolist()
                    count += sum(1 for owner in row if self._hit(owner))
        return count


def parallel_exposure(
    grid: RoutingGrid, net_id: int, sensitive_ids: Iterable[int], separation: int = 1
) -> int:
    """Total parallel-adjacent cells between a net and sensitive nets.

    Counts, over every grid cell carrying ``net_id``'s wiring in one
    direction, the cells on neighbouring same-direction tracks (within
    ``separation``) owned by any of ``sensitive_ids``.
    """
    import numpy as np

    sens = {int(i) for i in sensitive_ids} - {net_id}
    if not sens:
        return 0
    exposure = 0
    # repro: allow[txn.mutate] whole-grid vectorised scan: reads both owner planes once; snapshot() would copy both arrays just to mask them
    for arr in (grid._h_owner, grid._v_owner):
        mine = arr == net_id
        theirs = np.isin(arr, sorted(sens))
        for d in range(1, separation + 1):
            exposure += int((mine[d:, :] & theirs[:-d, :]).sum())
            exposure += int((mine[:-d, :] & theirs[d:, :]).sum())
    return exposure
