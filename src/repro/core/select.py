"""Path selection among minimum-corner candidates (section 3.2).

When the searches return several paths with the same (minimum) number
of corners, the best one is chosen by weighting the Path Selection
Trees and backtracking through them - a depth-first walk with bounding
functions.  Two properties of the problem make this cheap, as the paper
notes: edge weighting is limited to the PSTs (far smaller than the
whole Track Intersection Graph), and candidates share tree prefixes, so
per-corner costs are memoised (:class:`repro.core.cost.CornerCostEvaluator`).

The bounding function used here: candidates are visited in ascending
wire-length order and a partial sum is abandoned as soon as it reaches
the best complete cost (all cost terms are non-negative).  Since every
remaining candidate's length-only lower bound is no smaller, the walk
also terminates early once ``w1 * length`` alone reaches the bound.
"""

from __future__ import annotations


from repro import instrument
from repro.instrument.names import PST_BACKTRACK_STEPS, PST_CANDIDATES
from repro.core.cost import CornerCostEvaluator
from repro.core.search import CandidatePath


def select_best_path(
    candidates: list[CandidatePath], evaluator: CornerCostEvaluator
) -> tuple[CandidatePath | None, float]:
    """The cheapest candidate under the section 3.2 cost function.

    Returns ``(candidate, cost)``; ``(None, inf)`` for an empty input.
    Ties resolve to the first-found candidate in length order, which
    keeps the router deterministic.  Backtrack effort (one step per
    corner-cost evaluation during the bounded walk) is tallied locally
    and reported in one batch.
    """
    best: CandidatePath | None = None
    best_cost = float("inf")
    steps = 0
    w1 = evaluator.weights.w1
    for cand in sorted(candidates, key=lambda c: (c.length, c.points[1:2])):
        partial = w1 * float(cand.length)
        if partial >= best_cost:
            break  # every later candidate is at least this long
        pruned = False
        for corner in cand.corners:
            steps += 1
            partial += evaluator.corner_cost(*corner)
            if partial >= best_cost:
                pruned = True
                break
        if pruned:
            continue
        partial += evaluator.extra_cost(cand.points, cand.corners)
        if partial < best_cost:
            best = cand
            best_cost = partial
    inst = instrument.active()
    if inst.enabled:
        inst.count(PST_CANDIDATES, len(candidates))
        inst.count(PST_BACKTRACK_STEPS, steps)
    return best, best_cost
