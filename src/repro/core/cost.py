"""The path cost model of section 3.2.

The path selected among the minimum-corner candidates minimises

    C = w1*wl + sum_{j=1..k} (w21*drg_j + w22*dup_j + w23*acf_j)

where ``wl`` is the candidate's wire length and, for each corner ``j``,

``drg_j``
    a measure of the proximity of the corner to routed grid points,
``dup_j``
    a measure of the proximity of the corner to unrouted net terminals,
``acf_j``
    the area congestion factor around the corner.

The paper leaves the three measures' exact definitions open; we define
each as a normalised density over a square window of ``radius`` tracks
around the corner (values in ``[0, 1]``), read straight off the
occupancy array.  The weights default to the paper's sparse-design
setting ``w1 = 1``, ``w21 = w22 = w23 = 10``; for dense designs the
paper advises weighting the corner term higher, which the
:meth:`CostWeights.dense` preset does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid import RoutingGrid


@dataclass(frozen=True)
class CostWeights:
    """Weights and window radius for the corner cost model."""

    w1: float = 1.0
    w21: float = 10.0
    w22: float = 10.0
    w23: float = 10.0
    radius: int = 3

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ValueError("cost window radius must be >= 1")
        if min(self.w1, self.w21, self.w22, self.w23) < 0:
            raise ValueError("cost weights must be non-negative")

    @staticmethod
    def sparse() -> "CostWeights":
        """The paper's setting for sparse net distributions."""
        return CostWeights(w1=1.0, w21=10.0, w22=10.0, w23=10.0)

    @staticmethod
    def dense() -> "CostWeights":
        """Corner term weighted higher, for dense net distributions."""
        return CostWeights(w1=1.0, w21=30.0, w22=30.0, w23=30.0)

    @staticmethod
    def length_only() -> "CostWeights":
        """Ablation: ignore corner context, minimise wire length only."""
        return CostWeights(w1=1.0, w21=0.0, w22=0.0, w23=0.0)


class CornerCostEvaluator:
    """Evaluates the per-corner term of the cost function on a grid.

    A small memo keyed on the corner's indices makes repeated
    evaluation of shared Path Selection Tree prefixes cheap; the memo
    must be discarded once the grid mutates (the router creates one
    evaluator per two-terminal connection).

    ``extra_terms`` hooks in user cost-function extensions (paper
    section 3.2's "additional terms ... for nets with special
    constraints"), each a
    :class:`~repro.core.coupling.PathCostTerm` evaluated once per
    candidate path by the selector.

    ``base_cost`` is a constant surcharge per connection: on an
    over-cell plane above metal3/metal4 every connection pays for the
    deeper inter-plane via stacks at its endpoints, which keeps path
    costs comparable across planes (and keeps the plane-assignment
    pass honest — the penalty it charged is the penalty the routed
    connection reports).  It is ``0.0`` on plane 0, so single-plane
    costs are unchanged.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        weights: CostWeights,
        extra_terms: tuple = (),
        base_cost: float = 0.0,
    ) -> None:
        self.grid = grid
        self.weights = weights
        self.extra_terms = tuple(extra_terms)
        self.base_cost = base_cost
        self._memo: dict[tuple[int, int], float] = {}

    def extra_cost(self, points, corners) -> float:
        """Sum of the user extension terms for one candidate."""
        return sum(
            term.cost(self.grid, points, corners) for term in self.extra_terms
        )

    def corner_cost(self, v_idx: int, h_idx: int) -> float:
        """``w21*drg + w22*dup + w23*acf`` for a corner at (v, h)."""
        key = (v_idx, h_idx)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        w = self.weights
        r = w.radius
        drg = self.grid.routed_density_near(v_idx, h_idx, r)
        # Normalise the raw terminal count by the window cell count so
        # all three measures share the [0, 1] scale.
        window = (2 * r + 1) ** 2
        dup = min(1.0, self.grid.unrouted_terminals_near(v_idx, h_idx, r) / window)
        acf = self.grid.congestion_near(v_idx, h_idx, r)
        cost = w.w21 * drg + w.w22 * dup + w.w23 * acf
        self._memo[key] = cost
        return cost

    def path_cost(self, wire_length: int, corners: list[tuple[int, int]]) -> float:
        """Full cost ``C`` of a candidate path."""
        total = self.base_cost + self.weights.w1 * float(wire_length)
        for v_idx, h_idx in corners:
            total += self.corner_cost(v_idx, h_idx)
        return total
