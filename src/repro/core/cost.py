"""The path cost model of section 3.2.

The path selected among the minimum-corner candidates minimises

    C = w1*wl + sum_{j=1..k} (w21*drg_j + w22*dup_j + w23*acf_j)

where ``wl`` is the candidate's wire length and, for each corner ``j``,

``drg_j``
    a measure of the proximity of the corner to routed grid points,
``dup_j``
    a measure of the proximity of the corner to unrouted net terminals,
``acf_j``
    the area congestion factor around the corner.

The paper leaves the three measures' exact definitions open; we define
each as a normalised density over a square window of ``radius`` tracks
around the corner (values in ``[0, 1]``), read straight off the
occupancy array.  The weights default to the paper's sparse-design
setting ``w1 = 1``, ``w21 = w22 = w23 = 10``; for dense designs the
paper advises weighting the corner term higher, which the
:meth:`CostWeights.dense` preset does.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.grid import RoutingGrid


class TrackHistory:
    """Accumulated per-track congestion history (negotiated congestion).

    The iterative router (:mod:`repro.iterate`, docs/ITERATION.md)
    keeps one instance per over-cell plane and charges the tracks
    crossing overflowed regions after every iteration, PathFinder
    style: a track that stays contested grows more expensive each
    round, steering re-routes away from it.  The evaluator folds the
    charge into the section 3.2 cost as one more additive term — each
    axis-aligned segment of a candidate path pays the history value of
    the track it runs on, scaled by ``weight``.

    Charges and the weight are non-negative by construction, which the
    bounded backtracking of :func:`repro.core.select.select_best_path`
    relies on (a partial sum may only grow).  One-pass routing never
    creates an instance, so its costs are bit-identical to the seed.
    """

    __slots__ = ("v", "h", "weight")

    def __init__(
        self,
        num_vtracks: int,
        num_htracks: int,
        weight: float = 1.0,
    ) -> None:
        if num_vtracks < 1 or num_htracks < 1:
            raise ValueError("TrackHistory needs at least one track per axis")
        if weight < 0:
            raise ValueError("history weight must be non-negative")
        self.v: list[float] = [0.0] * num_vtracks
        self.h: list[float] = [0.0] * num_htracks
        self.weight = weight

    # ------------------------------------------------------------------
    def charge_window(
        self, v_lo: int, v_hi: int, h_lo: int, h_hi: int, amount: float
    ) -> None:
        """Add ``amount`` to every track crossing an index-space window."""
        if amount < 0:
            raise ValueError("history charges must be non-negative")
        for v in range(max(0, v_lo), min(len(self.v) - 1, v_hi) + 1):
            self.v[v] += amount
        for h in range(max(0, h_lo), min(len(self.h) - 1, h_hi) + 1):
            self.h[h] += amount

    def decay(self, factor: float) -> None:
        """Scale all accumulated history by ``factor`` (in ``[0, 1]``)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("history decay factor must be in [0, 1]")
        if factor == 1.0:
            return
        self.v = [x * factor for x in self.v]
        self.h = [x * factor for x in self.h]

    def peak(self) -> float:
        """Largest accumulated charge on any single track."""
        return max(max(self.v), max(self.h))

    @property
    def charged(self) -> bool:
        """Whether any track carries a non-zero charge."""
        return any(self.v) or any(self.h)

    def window(
        self, v_lo: int, v_hi: int, h_lo: int, h_hi: int
    ) -> "TrackHistory":
        """A copy restricted to a sub-grid window (local indices).

        The dispatch workers route on window snapshots whose track
        indices start at zero; slicing the history the same way keeps a
        worker's cost model bit-identical to the serial evaluator's.
        """
        sliced = TrackHistory(
            v_hi - v_lo + 1, h_hi - h_lo + 1, weight=self.weight
        )
        sliced.v = self.v[v_lo : v_hi + 1]
        sliced.h = self.h[h_lo : h_hi + 1]
        return sliced

    # ------------------------------------------------------------------
    def segment_cost(self, grid: RoutingGrid, points: Sequence) -> float:
        """The history surcharge of one candidate path.

        Each axis-aligned segment pays the charge of the track it runs
        on, once — minimum-corner candidates use each track for exactly
        one segment, so this is a per-track-touched charge.
        """
        if self.weight == 0.0:
            return 0.0
        total = 0.0
        for a, b in zip(points, points[1:]):
            if a == b:
                continue
            if a.y == b.y:
                total += self.h[grid.htracks.index_of(a.y)]
            else:
                total += self.v[grid.vtracks.index_of(a.x)]
        return self.weight * total


@dataclass(frozen=True)
class CostWeights:
    """Weights and window radius for the corner cost model."""

    w1: float = 1.0
    w21: float = 10.0
    w22: float = 10.0
    w23: float = 10.0
    radius: int = 3

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ValueError("cost window radius must be >= 1")
        if min(self.w1, self.w21, self.w22, self.w23) < 0:
            raise ValueError("cost weights must be non-negative")

    @staticmethod
    def sparse() -> "CostWeights":
        """The paper's setting for sparse net distributions."""
        return CostWeights(w1=1.0, w21=10.0, w22=10.0, w23=10.0)

    @staticmethod
    def dense() -> "CostWeights":
        """Corner term weighted higher, for dense net distributions."""
        return CostWeights(w1=1.0, w21=30.0, w22=30.0, w23=30.0)

    @staticmethod
    def length_only() -> "CostWeights":
        """Ablation: ignore corner context, minimise wire length only."""
        return CostWeights(w1=1.0, w21=0.0, w22=0.0, w23=0.0)


class CornerCostEvaluator:
    """Evaluates the per-corner term of the cost function on a grid.

    A small memo keyed on the corner's indices makes repeated
    evaluation of shared Path Selection Tree prefixes cheap; the memo
    must be discarded once the grid mutates (the router creates one
    evaluator per two-terminal connection).

    ``extra_terms`` hooks in user cost-function extensions (paper
    section 3.2's "additional terms ... for nets with special
    constraints"), each a
    :class:`~repro.core.coupling.PathCostTerm` evaluated once per
    candidate path by the selector.

    ``base_cost`` is a constant surcharge per connection: on an
    over-cell plane above metal3/metal4 every connection pays for the
    deeper inter-plane via stacks at its endpoints, which keeps path
    costs comparable across planes (and keeps the plane-assignment
    pass honest — the penalty it charged is the penalty the routed
    connection reports).  It is ``0.0`` on plane 0, so single-plane
    costs are unchanged.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        weights: CostWeights,
        extra_terms: tuple = (),
        base_cost: float = 0.0,
        history: TrackHistory | None = None,
        width_tracks: int = 1,
        corner_surcharge: float = 0.0,
    ) -> None:
        self.grid = grid
        self.weights = weights
        self.extra_terms = tuple(extra_terms)
        self.base_cost = base_cost
        #: Negotiated-congestion history (repro.iterate).  ``None`` in
        #: one-pass mode, keeping the evaluator bit-identical to the
        #: seed cost model.
        self.history = history
        #: Track span of the net being routed (width classes).  A wide
        #: net's wire length is charged per track it covers, so the
        #: wl-vs-corner balance reflects the metal actually drawn.
        self.width_tracks = width_tracks
        #: Flat per-corner surcharge (e.g. the technology's via cost
        #: under ``objective="vias"``).  Constant across the equal-corner
        #: MBFS candidates, so it biases only engines that trade corner
        #: count against length (the Lee rescue path).
        self.corner_surcharge = corner_surcharge
        self._memo: dict[tuple[int, int], float] = {}

    def extra_cost(self, points, corners) -> float:
        """Sum of the user extension terms for one candidate.

        Includes the per-track history surcharge when an iterative run
        attached a :class:`TrackHistory` — evaluated here (once per
        surviving candidate) rather than in :meth:`corner_cost` so the
        memoised corner term stays history-free.
        """
        total = sum(
            term.cost(self.grid, points, corners) for term in self.extra_terms
        )
        if self.history is not None:
            total += self.history.segment_cost(self.grid, points)
        return total

    def corner_cost(self, v_idx: int, h_idx: int) -> float:
        """``w21*drg + w22*dup + w23*acf`` for a corner at (v, h)."""
        key = (v_idx, h_idx)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        w = self.weights
        r = w.radius
        drg = self.grid.routed_density_near(v_idx, h_idx, r)
        # Normalise the raw terminal count by the window cell count so
        # all three measures share the [0, 1] scale.
        window = (2 * r + 1) ** 2
        dup = min(1.0, self.grid.unrouted_terminals_near(v_idx, h_idx, r) / window)
        acf = self.grid.congestion_near(v_idx, h_idx, r)
        cost = w.w21 * drg + w.w22 * dup + w.w23 * acf
        self._memo[key] = cost
        return cost

    def path_cost(self, wire_length: int, corners: list[tuple[int, int]]) -> float:
        """Full cost ``C`` of a candidate path."""
        total = self.base_cost + self.weights.w1 * float(wire_length)
        # Conditional extras so the default configuration's float math —
        # and therefore the seed route digests — is untouched.
        if self.width_tracks > 1:
            total += self.weights.w1 * float(wire_length) * (self.width_tracks - 1)
        if self.corner_surcharge:
            total += self.corner_surcharge * len(corners)
        for v_idx, h_idx in corners:
            total += self.corner_cost(v_idx, h_idx)
        return total
