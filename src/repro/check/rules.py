"""The verification rule catalogue.

Every check in :mod:`repro.check` reports violations under one of the
rule ids defined here.  Ids are dotted ``pass.rule`` strings grouped by
verification pass:

``drc.*``
    Geometric design-rule checks over the realised wiring.
``lvs.*``
    Connectivity checks of the re-extracted net graph against the
    netlist.
``inv.*``
    Paper-level router invariants (section 3 guarantees).
``grid.*``
    Occupancy-state audits (transactional bookkeeping consistency).
``chan.*``
    Level A channel-routing legality (delegated to
    :meth:`repro.channels.ChannelRoute.violations`).

``docs/VERIFICATION.md`` documents each rule's semantics, severity and
the injection test that proves the rule fires.
"""

from __future__ import annotations

# -- DRC: geometry ------------------------------------------------------
RULE_SHORT = "drc.short"
"""Two nets overlap on the same layer, or a via/terminal stack of one
net touches wiring of another at its intersection."""

RULE_TRACK = "drc.track"
"""Wiring geometry off the routing tracks: a segment whose fixed or
endpoint coordinates lie on no defined track, or outside the layout."""

RULE_CORNER = "drc.corner"
"""A claimed corner via sits on no valid track intersection or not at a
direction change of its connection's path."""

RULE_OBSTACLE = "drc.obstacle"
"""Wiring crosses an over-cell area excluded for its direction."""

RULE_STACK = "drc.stack"
"""Cross-plane via-stack legality: a wire on a layer outside the
routed over-cell stack, a corner/junction via not spanning exactly one
plane's layer pair, or a terminal stack not reaching from the cell pin
to a routed plane."""

RULE_WIDTH = "drc.width"
"""A wire's drawn width (its net class's track span realised on its
layer) falls below the layer's minimum width rule."""

RULE_SPACING = "drc.spacing"
"""Two nets' parallel wires on the same layer run closer than the
width-dependent spacing the technology's table demands of the wider
wire (docs/TECHNOLOGY.md)."""

# -- LVS: connectivity --------------------------------------------------
RULE_OPEN = "lvs.open"
"""A net the router reported complete whose extracted geometry does not
connect all of its terminals into one component."""

RULE_MERGED = "lvs.short"
"""Two different nets are electrically merged: one extracted component
carries geometry or terminals of more than one net."""

RULE_DANGLING = "lvs.dangling"
"""Orphan metal: an extracted component with wiring but no terminal."""

# -- invariants: paper-level assertions --------------------------------
RULE_CORNER_PER_TRACK = "inv.corner_per_track"
"""An MBFS-routed connection turns off the same track twice (the search
guarantees at most one corner per track per connection)."""

RULE_CORNER_CLAIM = "inv.corner_claim"
"""The corner list a connection claims (what the PST selector priced)
does not match the geometric corners of its committed path."""

RULE_LAYER = "inv.layer"
"""Layer-assignment violation: a set A net routed over the cells on
the reserved over-cell layers, or a set B net missing from the level B
result."""

# -- grid: occupancy-state audits --------------------------------------
RULE_LEDGER = "grid.ledger"
"""The occupancy arrays do not replay exactly from the per-net mutation
ledgers (wiring present with no ledger record, or vice versa)."""

RULE_JOURNAL = "grid.journal"
"""The transaction journal is unbalanced: entries remain with no open
transaction, or a transaction was left open."""

# -- channels: level A legality ----------------------------------------
RULE_CHANNEL = "chan.route"
"""A detailed channel route violates channel legality (overlap, open,
unconnected pin); see :meth:`repro.channels.ChannelRoute.violations`."""

#: Every rule id, in catalogue order (docs and tests iterate this).
ALL_RULES: tuple[str, ...] = (
    RULE_SHORT,
    RULE_TRACK,
    RULE_CORNER,
    RULE_OBSTACLE,
    RULE_STACK,
    RULE_WIDTH,
    RULE_SPACING,
    RULE_OPEN,
    RULE_MERGED,
    RULE_DANGLING,
    RULE_CORNER_PER_TRACK,
    RULE_CORNER_CLAIM,
    RULE_LAYER,
    RULE_LEDGER,
    RULE_JOURNAL,
    RULE_CHANNEL,
)
