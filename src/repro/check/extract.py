"""Independent geometry extraction from a routed design.

The verification passes deliberately do **not** read the occupancy
arrays (the router's own bookkeeping).  Instead this module re-derives
the realised wiring from first principles:

* every committed connection's :class:`~repro.geometry.Path` becomes
  per-layer :class:`Wire` records (metal4 horizontal, metal3 vertical
  under the reserved-layer model);
* every claimed corner becomes an m3-m4 :class:`Via`;
* every net pin position (straight from the netlist) becomes a
  terminal via stack, which the paper lets connect any layer.

The DRC sweep, the LVS-lite connectivity rebuild and several invariant
checks all consume the resulting :class:`ExtractedDesign`.  The only
grid inputs used are the *track definitions* (static geometry, needed
to map corner indices to coordinates) - never ownership state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import LevelBResult

#: Reserved-layer model: metal3 carries vertical wiring, metal4 horizontal.
VERTICAL_LAYER = 3
HORIZONTAL_LAYER = 4

#: Via kinds.
VIA_CORNER = "corner"
VIA_TERMINAL = "terminal"
VIA_JUNCTION = "junction"


@dataclass(frozen=True)
class Wire:
    """One extracted wire piece on one layer.

    ``track`` is the fixed coordinate (y for horizontal wires on
    metal4, x for vertical wires on metal3); ``lo``/``hi`` bound the
    varying coordinate, ``lo <= hi``.
    """

    net: str
    layer: int
    track: int
    lo: int
    hi: int

    @property
    def is_horizontal(self) -> bool:
        return self.layer == HORIZONTAL_LAYER

    def contains(self, x: int, y: int) -> bool:
        """Does the wire pass through geometric point ``(x, y)``?"""
        if self.is_horizontal:
            return y == self.track and self.lo <= x <= self.hi
        return x == self.track and self.lo <= y <= self.hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_horizontal:
            return f"{self.net}:m{self.layer} y={self.track} x[{self.lo},{self.hi}]"
        return f"{self.net}:m{self.layer} x={self.track} y[{self.lo},{self.hi}]"


@dataclass(frozen=True)
class Via:
    """A layer connection at a point: an m3-m4 corner or a terminal stack.

    A terminal stack reaches from the cell pin up through every routing
    layer (paper section 2), so it makes metal on *any* layer at its
    point electrically one node; a corner via connects m3 and m4.  Both
    occupy the full intersection for ownership purposes.
    """

    net: str
    x: int
    y: int
    kind: str

    @property
    def point(self) -> Point:
        return Point(self.x, self.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.net}:{self.kind}@({self.x},{self.y})"


@dataclass
class ExtractedDesign:
    """Everything the verification passes need, re-derived from geometry."""

    wires: list[Wire] = field(default_factory=list)
    vias: list[Via] = field(default_factory=list)
    #: net name -> unique terminal points (netlist ground truth).
    terminals: dict[str, list[Point]] = field(default_factory=dict)
    #: net name -> did the router claim the net complete?
    complete: dict[str, bool] = field(default_factory=dict)

    def by_track(self) -> dict[tuple[int, int], list[Wire]]:
        """Wires grouped by ``(layer, track)``, sorted by span start."""
        groups: dict[tuple[int, int], list[Wire]] = {}
        for w in self.wires:
            groups.setdefault((w.layer, w.track), []).append(w)
        for wires in groups.values():
            wires.sort(key=lambda w: (w.lo, w.hi))
        return groups


def wires_of_path(net: str, path) -> list[Wire]:
    """The non-degenerate wire pieces of one connection path."""
    wires = []
    for seg in path.segments:
        if seg.is_point:
            continue
        if seg.is_horizontal:
            lo, hi = sorted((seg.a.x, seg.b.x))
            wires.append(Wire(net, HORIZONTAL_LAYER, seg.a.y, lo, hi))
        else:
            lo, hi = sorted((seg.a.y, seg.b.y))
            wires.append(Wire(net, VERTICAL_LAYER, seg.a.x, lo, hi))
    return wires


def _end_layers(path) -> list[tuple[Point, int]]:
    """Path endpoints with the layer of their adjacent wire piece.

    Walks inward past degenerate segments; a path with no real segment
    yields nothing.
    """
    real = [s for s in path.segments if not s.is_point]
    if not real:
        return []
    first, last = real[0], real[-1]
    return [
        (first.a, HORIZONTAL_LAYER if first.is_horizontal else VERTICAL_LAYER),
        (last.b, HORIZONTAL_LAYER if last.is_horizontal else VERTICAL_LAYER),
    ]


def _junction_vias(
    design: ExtractedDesign,
    endpoints: dict[str, list[tuple[Point, int]]],
) -> list[Via]:
    """Steiner junction vias, inferred from geometry alone.

    When a connection *ends* on same-net metal of the opposite layer
    (a T-junction onto an earlier trunk of the tree), the committed
    grid state carries both slots of that intersection for the net -
    the junction via is physically there even though no corner was
    claimed (corners are direction changes *within* a path).  Re-derive
    it: endpoint not a terminal of the net, same-net wire of the other
    layer passing through it.
    """
    spans: dict[tuple[str, int, int], list[tuple[int, int]]] = {}
    for w in design.wires:
        spans.setdefault((w.net, w.layer, w.track), []).append((w.lo, w.hi))
    vias = []
    emitted: set[tuple[str, int, int]] = set()
    for net, ends in endpoints.items():
        terminal_points = set(design.terminals.get(net, ()))
        for point, layer in ends:
            if point in terminal_points:
                continue  # a terminal stack already connects all layers
            if (net, point.x, point.y) in emitted:
                continue
            other = (
                VERTICAL_LAYER if layer == HORIZONTAL_LAYER else HORIZONTAL_LAYER
            )
            track = point.x if other == VERTICAL_LAYER else point.y
            varying = point.y if other == VERTICAL_LAYER else point.x
            for lo, hi in spans.get((net, other, track), ()):
                if lo <= varying <= hi:
                    vias.append(Via(net, point.x, point.y, VIA_JUNCTION))
                    emitted.add((net, point.x, point.y))
                    break
    return vias


def extract_levelb(result: "LevelBResult") -> ExtractedDesign:
    """Re-extract the level B wiring of a routing result.

    Claimed corner indices that fall outside the grid produce no via
    (the ``drc.corner`` rule reports them); everything else maps
    through the grid's static track coordinates.
    """
    grid = result.tig.grid
    nv, nh = grid.num_vtracks, grid.num_htracks
    design = ExtractedDesign()
    endpoints: dict[str, list[tuple[Point, int]]] = {}
    for routed in result.routed:
        name = routed.net.name
        design.complete[name] = routed.complete
        seen: set[Point] = set()
        points = []
        for p in routed.net.pin_positions():
            if p not in seen:
                seen.add(p)
                points.append(p)
        design.terminals[name] = points
        for p in points:
            design.vias.append(Via(name, p.x, p.y, VIA_TERMINAL))
        for conn in routed.connections:
            design.wires.extend(wires_of_path(name, conn.path))
            endpoints.setdefault(name, []).extend(_end_layers(conn.path))
            for v_idx, h_idx in conn.corners:
                if 0 <= v_idx < nv and 0 <= h_idx < nh:
                    x, y = grid.coord_of(v_idx, h_idx)
                    design.vias.append(Via(name, x, y, VIA_CORNER))
    design.vias.extend(_junction_vias(design, endpoints))
    return design
