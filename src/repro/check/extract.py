"""Independent geometry extraction from a routed design.

The verification passes deliberately do **not** read the occupancy
arrays (the router's own bookkeeping).  Instead this module re-derives
the realised wiring from first principles:

* every committed connection's :class:`~repro.geometry.Path` becomes
  per-layer :class:`Wire` records on its net's plane (even layers
  horizontal, odd layers vertical under the reserved-layer model -
  metal4/metal3 for plane 0);
* every claimed corner becomes a :class:`Via` spanning its plane's
  layer pair;
* every net pin position (straight from the netlist) becomes a
  terminal via stack reaching from metal1 up to the net's plane, which
  the paper lets connect any layer it passes through.

The DRC sweep, the LVS-lite connectivity rebuild and several invariant
checks all consume the resulting :class:`ExtractedDesign`.  The only
grid inputs used are the *track definitions* (static geometry, needed
to map corner indices to coordinates) - never ownership state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import LevelBResult
    from repro.geometry.segment import Path

#: Reserved-layer model, plane 0: metal3 carries vertical wiring,
#: metal4 horizontal.  Plane ``p`` uses layers ``3 + 2p`` / ``4 + 2p``
#: (see :func:`plane_layers`); odd layers are vertical, even horizontal.
VERTICAL_LAYER = 3
HORIZONTAL_LAYER = 4

#: The lowest layer a terminal stack reaches (the cell pin's metal1).
TERMINAL_BASE_LAYER = 1


def plane_layers(plane: int) -> tuple[int, int]:
    """``(vertical, horizontal)`` metal layers of over-cell plane ``plane``."""
    return VERTICAL_LAYER + 2 * plane, HORIZONTAL_LAYER + 2 * plane


def layer_is_horizontal(layer: int) -> bool:
    """Reserved-layer direction: even layers horizontal, odd vertical."""
    return layer % 2 == 0

#: Via kinds.
VIA_CORNER = "corner"
VIA_TERMINAL = "terminal"
VIA_JUNCTION = "junction"


@dataclass(frozen=True)
class Wire:
    """One extracted wire piece on one layer.

    ``track`` is the fixed coordinate (y for horizontal wires on even
    layers, x for vertical wires on odd layers); ``lo``/``hi`` bound
    the varying coordinate, ``lo <= hi``.
    """

    net: str
    layer: int
    track: int
    lo: int
    hi: int

    @property
    def is_horizontal(self) -> bool:
        return layer_is_horizontal(self.layer)

    @property
    def plane(self) -> int:
        """The over-cell plane this wire's layer belongs to."""
        return (self.layer - VERTICAL_LAYER) // 2

    def contains(self, x: int, y: int) -> bool:
        """Does the wire pass through geometric point ``(x, y)``?"""
        if self.is_horizontal:
            return y == self.track and self.lo <= x <= self.hi
        return x == self.track and self.lo <= y <= self.hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_horizontal:
            return f"{self.net}:m{self.layer} y={self.track} x[{self.lo},{self.hi}]"
        return f"{self.net}:m{self.layer} x={self.track} y[{self.lo},{self.hi}]"


@dataclass(frozen=True)
class Via:
    """A layer connection at a point: a corner via or a terminal stack.

    ``lo_layer``/``hi_layer`` bound the metal layers the via passes
    through (inclusive).  A corner via spans its plane's pair (m3-m4
    on plane 0, the defaults); a terminal stack reaches from the cell
    pin (metal1) up through every layer of its net's plane (paper
    section 2), making metal on any spanned layer at its point
    electrically one node.  A via occupies the full intersection of
    every plane it crosses for ownership purposes.
    """

    net: str
    x: int
    y: int
    kind: str
    lo_layer: int = VERTICAL_LAYER
    hi_layer: int = HORIZONTAL_LAYER

    @property
    def point(self) -> Point:
        return Point(self.x, self.y)

    def spans(self, layer: int) -> bool:
        """Does the via pass through metal ``layer``?"""
        return self.lo_layer <= layer <= self.hi_layer

    def overlaps(self, other: "Via") -> bool:
        """Do the two vias share at least one metal layer?"""
        return (
            self.lo_layer <= other.hi_layer
            and other.lo_layer <= self.hi_layer
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.net}:{self.kind}@({self.x},{self.y})"
            f"m{self.lo_layer}-m{self.hi_layer}"
        )


@dataclass
class ExtractedDesign:
    """Everything the verification passes need, re-derived from geometry."""

    wires: list[Wire] = field(default_factory=list)
    vias: list[Via] = field(default_factory=list)
    #: net name -> unique terminal points (netlist ground truth).
    terminals: dict[str, list[Point]] = field(default_factory=dict)
    #: net name -> did the router claim the net complete?
    complete: dict[str, bool] = field(default_factory=dict)

    def by_track(self) -> dict[tuple[int, int], list[Wire]]:
        """Wires grouped by ``(layer, track)``, sorted by span start."""
        groups: dict[tuple[int, int], list[Wire]] = {}
        for w in self.wires:
            groups.setdefault((w.layer, w.track), []).append(w)
        for wires in groups.values():
            wires.sort(key=lambda w: (w.lo, w.hi))
        return groups


def wires_of_path(net: str, path: "Path", plane: int = 0) -> list[Wire]:
    """The non-degenerate wire pieces of one connection path."""
    v_layer, h_layer = plane_layers(plane)
    wires = []
    for seg in path.segments:
        if seg.is_point:
            continue
        if seg.is_horizontal:
            lo, hi = sorted((seg.a.x, seg.b.x))
            wires.append(Wire(net, h_layer, seg.a.y, lo, hi))
        else:
            lo, hi = sorted((seg.a.y, seg.b.y))
            wires.append(Wire(net, v_layer, seg.a.x, lo, hi))
    return wires


def _end_layers(path: "Path", plane: int = 0) -> list[tuple[Point, int]]:
    """Path endpoints with the layer of their adjacent wire piece.

    Walks inward past degenerate segments; a path with no real segment
    yields nothing.
    """
    v_layer, h_layer = plane_layers(plane)
    real = [s for s in path.segments if not s.is_point]
    if not real:
        return []
    first, last = real[0], real[-1]
    return [
        (first.a, h_layer if first.is_horizontal else v_layer),
        (last.b, h_layer if last.is_horizontal else v_layer),
    ]


def _junction_vias(
    design: ExtractedDesign,
    endpoints: dict[str, list[tuple[Point, int]]],
) -> list[Via]:
    """Steiner junction vias, inferred from geometry alone.

    When a connection *ends* on same-net metal of the opposite layer
    (a T-junction onto an earlier trunk of the tree), the committed
    grid state carries both slots of that intersection for the net -
    the junction via is physically there even though no corner was
    claimed (corners are direction changes *within* a path).  Re-derive
    it: endpoint not a terminal of the net, same-net wire of the other
    layer passing through it.
    """
    spans: dict[tuple[str, int, int], list[tuple[int, int]]] = {}
    for w in design.wires:
        spans.setdefault((w.net, w.layer, w.track), []).append((w.lo, w.hi))
    vias = []
    emitted: set[tuple[str, int, int]] = set()
    for net, ends in endpoints.items():
        terminal_points = set(design.terminals.get(net, ()))
        for point, layer in ends:
            if point in terminal_points:
                continue  # a terminal stack already connects all layers
            if (net, point.x, point.y) in emitted:
                continue
            # The same-plane partner layer: odd (vertical) pairs with
            # the even (horizontal) layer above it and vice versa.
            other = layer - 1 if layer_is_horizontal(layer) else layer + 1
            track = point.y if layer_is_horizontal(other) else point.x
            varying = point.x if layer_is_horizontal(other) else point.y
            for lo, hi in spans.get((net, other, track), ()):
                if lo <= varying <= hi:
                    vias.append(
                        Via(
                            net,
                            point.x,
                            point.y,
                            VIA_JUNCTION,
                            lo_layer=min(layer, other),
                            hi_layer=max(layer, other),
                        )
                    )
                    emitted.add((net, point.x, point.y))
                    break
    return vias


def extract_levelb(result: "LevelBResult") -> ExtractedDesign:
    """Re-extract the level B wiring of a routing result.

    Claimed corner indices that fall outside the grid produce no via
    (the ``drc.corner`` rule reports them); everything else maps
    through the grid's static track coordinates.
    """
    grid = result.tig.grid
    nv, nh = grid.num_vtracks, grid.num_htracks
    design = ExtractedDesign()
    endpoints: dict[str, list[tuple[Point, int]]] = {}
    for routed in result.routed:
        name = routed.net.name
        plane = getattr(routed, "plane", 0)
        v_layer, h_layer = plane_layers(plane)
        design.complete[name] = routed.complete
        seen: set[Point] = set()
        points = []
        for p in routed.net.pin_positions():
            if p not in seen:
                seen.add(p)
                points.append(p)
        design.terminals[name] = points
        for p in points:
            design.vias.append(
                Via(
                    name,
                    p.x,
                    p.y,
                    VIA_TERMINAL,
                    lo_layer=TERMINAL_BASE_LAYER,
                    hi_layer=h_layer,
                )
            )
        for conn in routed.connections:
            design.wires.extend(wires_of_path(name, conn.path, plane))
            endpoints.setdefault(name, []).extend(
                _end_layers(conn.path, plane)
            )
            for v_idx, h_idx in conn.corners:
                if 0 <= v_idx < nv and 0 <= h_idx < nh:
                    x, y = grid.coord_of(v_idx, h_idx)
                    design.vias.append(
                        Via(
                            name,
                            x,
                            y,
                            VIA_CORNER,
                            lo_layer=v_layer,
                            hi_layer=h_layer,
                        )
                    )
    design.vias.extend(_junction_vias(design, endpoints))
    return design
