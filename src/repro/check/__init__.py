"""repro.check - independent static verification of routed output.

Takes what the routers *produced* (committed paths, claimed corners,
channel routes) and what the netlist *demanded*, re-extracts the
realised wiring without consulting the routers' own bookkeeping, and
checks it three ways:

* **DRC** - geometric legality: per-layer shorts, track legality,
  corner/via placement, obstacle violations and cross-plane via-stack
  legality (:mod:`repro.check.drc`);
* **LVS-lite** - connectivity: the extracted net graph vs the netlist,
  reporting opens, merged nets and dangling metal
  (:mod:`repro.check.lvs`);
* **invariant sanitizer** - paper-level guarantees (one corner per
  track, corner claims match geometry, layer assignment) and grid
  bookkeeping audits (ledger replay, journal balance)
  (:mod:`repro.check.sanitize`).

Violations are structured :class:`Violation` records under the rule ids
of :mod:`repro.check.rules` (documented in ``docs/VERIFICATION.md``).
Entry points: :func:`check_levelb`, :func:`check_flow`,
:func:`check_grid` and the router's per-commit :func:`sanitize_commit`
(checked mode, ``LevelBConfig(checked=True)``); the ``repro check`` CLI
wraps them.
"""

from repro.check.api import (
    GRID_RULES,
    LEVELB_RULES,
    check_flow,
    check_grid,
    check_levelb,
    sanitize_commit,
)
from repro.check.drc import (
    check_corners,
    check_obstacles,
    check_shorts,
    check_spacing,
    check_stacks,
    check_tracks,
    check_widths,
)
from repro.check.extract import (
    HORIZONTAL_LAYER,
    VERTICAL_LAYER,
    ExtractedDesign,
    Via,
    Wire,
    extract_levelb,
    layer_is_horizontal,
    plane_layers,
    wires_of_path,
)
from repro.check.lvs import check_connectivity
from repro.check.rules import (
    ALL_RULES,
    RULE_CHANNEL,
    RULE_CORNER,
    RULE_CORNER_CLAIM,
    RULE_CORNER_PER_TRACK,
    RULE_DANGLING,
    RULE_JOURNAL,
    RULE_LAYER,
    RULE_LEDGER,
    RULE_MERGED,
    RULE_OBSTACLE,
    RULE_OPEN,
    RULE_SHORT,
    RULE_SPACING,
    RULE_STACK,
    RULE_TRACK,
    RULE_WIDTH,
)
from repro.check.sanitize import (
    audit_grid,
    check_connection_invariants,
    check_invariants,
    check_layer_assignment,
)
from repro.check.violations import (
    CheckFailure,
    CheckReport,
    Severity,
    Violation,
)

__all__ = [
    "ALL_RULES",
    "GRID_RULES",
    "LEVELB_RULES",
    "RULE_CHANNEL",
    "RULE_CORNER",
    "RULE_CORNER_CLAIM",
    "RULE_CORNER_PER_TRACK",
    "RULE_DANGLING",
    "RULE_JOURNAL",
    "RULE_LAYER",
    "RULE_LEDGER",
    "RULE_MERGED",
    "RULE_OBSTACLE",
    "RULE_OPEN",
    "RULE_SHORT",
    "RULE_SPACING",
    "RULE_STACK",
    "RULE_TRACK",
    "RULE_WIDTH",
    "HORIZONTAL_LAYER",
    "VERTICAL_LAYER",
    "CheckFailure",
    "CheckReport",
    "ExtractedDesign",
    "Severity",
    "Via",
    "Violation",
    "Wire",
    "audit_grid",
    "check_connection_invariants",
    "check_connectivity",
    "check_corners",
    "check_flow",
    "check_grid",
    "check_invariants",
    "check_layer_assignment",
    "check_levelb",
    "check_obstacles",
    "check_shorts",
    "check_spacing",
    "check_stacks",
    "check_tracks",
    "check_widths",
    "extract_levelb",
    "layer_is_horizontal",
    "plane_layers",
    "sanitize_commit",
    "wires_of_path",
]
