"""Verification entry points: whole-result, whole-flow and grid checks.

The functions here bundle the individual passes (:mod:`~repro.check.drc`,
:mod:`~repro.check.lvs`, :mod:`~repro.check.sanitize`) into
:class:`~repro.check.violations.CheckReport` runs and emit the outcome
through the :mod:`repro.instrument` collector (``check`` span,
``check.*`` counters, one ``check.violation`` event per finding).

``sanitize_commit`` is the cheap per-commit slice used by the router's
opt-in checked mode; ``check_levelb`` / ``check_flow`` are the full
independent verification behind the ``repro check`` CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import instrument
from repro.instrument.names import (
    CHECK_RULES_EVALUATED,
    CHECK_VIOLATIONS,
    CHECKS_RUN,
    EVT_CHECK_VIOLATION,
    SPAN_CHECK,
    SPAN_CHECK_COMMIT,
)
from repro.check.drc import (
    check_corners,
    check_obstacles,
    check_shorts,
    check_spacing,
    check_stacks,
    check_tracks,
    check_widths,
)
from repro.check.extract import extract_levelb
from repro.check.lvs import check_connectivity
from repro.check.rules import (
    RULE_CHANNEL,
    RULE_CORNER,
    RULE_CORNER_CLAIM,
    RULE_CORNER_PER_TRACK,
    RULE_DANGLING,
    RULE_JOURNAL,
    RULE_LAYER,
    RULE_LEDGER,
    RULE_MERGED,
    RULE_OBSTACLE,
    RULE_OPEN,
    RULE_SHORT,
    RULE_SPACING,
    RULE_STACK,
    RULE_TRACK,
    RULE_WIDTH,
)
from repro.check.sanitize import (
    audit_grid,
    check_connection_invariants,
    check_invariants,
    check_layer_assignment,
)
from repro.check.violations import CheckReport, Severity, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import LevelBResult, RoutedNet
    from repro.flow.metrics import FlowResult
    from repro.grid import RoutingGrid

#: Rules evaluated by :func:`check_levelb` (layer assignment needs the
#: partition and is added when one is supplied).
LEVELB_RULES: tuple[str, ...] = (
    RULE_SHORT,
    RULE_TRACK,
    RULE_CORNER,
    RULE_OBSTACLE,
    RULE_STACK,
    RULE_OPEN,
    RULE_MERGED,
    RULE_DANGLING,
    RULE_CORNER_PER_TRACK,
    RULE_CORNER_CLAIM,
    RULE_LEDGER,
    RULE_JOURNAL,
)

GRID_RULES: tuple[str, ...] = (RULE_LEDGER, RULE_JOURNAL)


def _finish(report: CheckReport) -> CheckReport:
    """Count and publish a finished report through the collector."""
    inst = instrument.active()
    if inst.enabled:
        inst.count(CHECKS_RUN)
        inst.count(CHECK_RULES_EVALUATED, len(report.rules_run))
        inst.count(CHECK_VIOLATIONS, len(report.violations))
        for v in report.violations:
            inst.event(EVT_CHECK_VIOLATION, **v.to_dict())
    return report


def _levelb_violations(
    result: "LevelBResult",
    set_a: "tuple[str, ...] | list[str] | None",
    set_b: "tuple[str, ...] | list[str] | None",
) -> tuple[tuple[str, ...], list[Violation]]:
    """The full level B pass as (rules evaluated, violations found)."""
    rules = LEVELB_RULES
    violations: list[Violation] = []
    design = extract_levelb(result)
    grid = result.tig.grid
    violations.extend(check_shorts(design))
    violations.extend(check_tracks(design, grid, result.bounds))
    violations.extend(check_corners(result))
    violations.extend(check_obstacles(design, result.obstacles, grid))
    violations.extend(check_stacks(design, result.num_planes))
    # The technology-rule checks need the width classes realised per
    # net; results from before technologies rode along simply skip them.
    if result.technology is not None:
        rules = (*rules, RULE_WIDTH, RULE_SPACING)
        spans = {
            r.net.name: result.technology.net_footprint(
                r.net.net_class, r.plane
            )[0]
            for r in result.routed
        }
        violations.extend(check_widths(design, result.technology, spans))
        violations.extend(
            check_spacing(design, grid, result.technology, spans)
        )
    violations.extend(check_connectivity(design))
    violations.extend(check_invariants(result))
    if set_b is not None:
        rules = (*rules, RULE_LAYER)
        violations.extend(check_layer_assignment(result, set_a or (), set_b))
    # Every plane keeps its own ledgers and journal; audit them all.
    for plane_grid in result.tig.planes:
        violations.extend(audit_grid(plane_grid))
    return rules, violations


def check_levelb(
    result: "LevelBResult",
    *,
    set_a: "tuple[str, ...] | list[str] | None" = None,
    set_b: "tuple[str, ...] | list[str] | None" = None,
    subject: str = "levelb",
) -> CheckReport:
    """Full independent verification of a level B routing result.

    Re-extracts the wiring from committed paths (never the occupancy
    arrays), then runs the DRC, LVS and invariant passes plus the grid
    bookkeeping audit.  Pass the partition (``set_a``/``set_b`` net
    names) to verify reserved-layer assignment as well.
    """
    with instrument.span(SPAN_CHECK):
        report = CheckReport(subject=subject)
        rules, violations = _levelb_violations(result, set_a, set_b)
        report.extend(violations)
        report.rules_run = rules
    return _finish(report)


def check_grid(
    grid: "RoutingGrid", *, expect_closed: bool = True, subject: str = "grid"
) -> CheckReport:
    """Occupancy bookkeeping audit only (ledger replay + journal)."""
    with instrument.span(SPAN_CHECK):
        report = CheckReport(subject=subject, rules_run=GRID_RULES)
        report.extend(audit_grid(grid, expect_closed=expect_closed))
    return _finish(report)


def check_flow(result: "FlowResult") -> CheckReport:
    """Verify everything a flow run produced.

    Level A channel routes re-check against their channel problems
    (rule ``chan.route``); a level B result gets the full
    :func:`check_levelb` treatment, including layer assignment when the
    flow recorded the partition in its notes.
    """
    with instrument.span(SPAN_CHECK):
        rules: tuple[str, ...] = ()
        report = CheckReport(subject=f"{result.design}/{result.flow}")
        if result.channel_routes and result.global_route is not None:
            rules = (*rules, RULE_CHANNEL)
            specs = result.global_route.specs
            for i, (spec, route) in enumerate(
                zip(specs, result.channel_routes)
            ):
                for message in route.violations(spec.problem):
                    report.violations.append(
                        Violation(
                            RULE_CHANNEL,
                            f"channel {i}: {message}",
                        )
                    )
        if result.levelb is not None:
            set_a = result.notes.get("level_a_net_names")
            set_b = result.notes.get("level_b_net_names")
            levelb_rules, violations = _levelb_violations(
                result.levelb, set_a, set_b
            )
            rules = rules + levelb_rules
            report.extend(violations)
        report.rules_run = rules
    return _finish(report)


def sanitize_commit(
    grid: "RoutingGrid", routed: "RoutedNet", *, in_ambient_txn: bool = False
) -> list[Violation]:
    """Checked mode's per-commit slice: one net's invariants + grid audit.

    Runs after a net commits (or a refinement transaction closes): the
    paper invariants of the net's own connections plus the full ledger
    replay and journal-balance audit.  ``in_ambient_txn`` relaxes the
    journal check for callers running inside an outer transaction
    (probes), where a populated journal is legitimate.
    """
    with instrument.span(SPAN_CHECK_COMMIT):
        violations = []
        for conn in routed.connections:
            violations.extend(
                check_connection_invariants(routed.net.name, conn, grid)
            )
        violations.extend(
            audit_grid(grid, expect_closed=not in_ambient_txn)
        )
        inst = instrument.active()
        if inst.enabled and violations:
            inst.count(CHECK_VIOLATIONS, len(violations))
            for v in violations:
                inst.event(EVT_CHECK_VIOLATION, **v.to_dict())
    return violations


__all__ = [
    "LEVELB_RULES",
    "GRID_RULES",
    "check_levelb",
    "check_grid",
    "check_flow",
    "sanitize_commit",
    "Severity",
]
