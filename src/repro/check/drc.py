"""Geometry design-rule checks over extracted wiring.

Five rules, all operating on the :class:`~repro.check.extract.ExtractedDesign`
(never on occupancy state):

``drc.short``
    Same-layer overlap of two nets' wires (a single shared grid cell is
    a short - each intersection has one slot per direction), and via or
    terminal-stack conflicts: a via occupies both slots of every plane
    it spans, so foreign wiring through its point on any spanned layer
    shorts.  Vias of different nets at the same point only conflict
    when their layer spans overlap - stacked planes are independent.
``drc.track``
    Wiring geometry must lie on defined routing tracks and inside the
    layout bounds.
``drc.corner``
    Every claimed corner must index a real track intersection and sit
    at a direction change of its own connection's path.
``drc.obstacle``
    No wiring through over-cell areas excluded for its direction.
``drc.stack``
    Cross-plane via-stack legality: every via's layer span must be
    well-formed and inside the technology's layer stack, and wiring
    must sit on a plane the result actually routes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.extract import (
    HORIZONTAL_LAYER,
    TERMINAL_BASE_LAYER,
    VERTICAL_LAYER,
    VIA_CORNER,
    VIA_JUNCTION,
    ExtractedDesign,
    Via,
    Wire,
    layer_is_horizontal,
    plane_layers,
)
from repro.check.rules import (
    RULE_CORNER,
    RULE_OBSTACLE,
    RULE_SHORT,
    RULE_SPACING,
    RULE_STACK,
    RULE_TRACK,
    RULE_WIDTH,
)
from repro.check.violations import Violation
from repro.geometry import Point, Rect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import LevelBResult, Obstacle
    from repro.grid import RoutingGrid
    from repro.technology import Layer, Technology


def check_shorts(design: ExtractedDesign) -> list[Violation]:
    """Same-layer overlaps and via conflicts between different nets."""
    violations = []
    by_track = design.by_track()
    # Wire-wire overlap: one sweep per (layer, track), O(k log k) each.
    for (layer, track), wires in by_track.items():
        max_hi = None
        holder: Wire | None = None
        for w in wires:
            if (
                holder is not None
                and max_hi is not None
                and w.lo <= max_hi
                and w.net != holder.net
            ):
                at = (
                    (w.lo, track)
                    if layer_is_horizontal(layer)
                    else (track, w.lo)
                )
                violations.append(
                    Violation(
                        RULE_SHORT,
                        f"nets {holder.net} and {w.net} overlap on "
                        f"m{layer} track {track} "
                        f"[{w.lo},{min(w.hi, max_hi)}]",
                        nets=(holder.net, w.net),
                        location=at,
                        layer=layer,
                    )
                )
            if max_hi is None or w.hi > max_hi:
                max_hi, holder = w.hi, w
    # Via conflicts: point collisions (overlapping layer spans only -
    # vias on disjoint planes stack legally) and foreign wiring through
    # a via on a layer the via spans.
    layers = sorted({layer for layer, _track in by_track})
    by_point: dict[Point, list[Via]] = {}
    for via in design.vias:
        by_point.setdefault(via.point, []).append(via)
    for point, vias in by_point.items():
        colliding: set[str] = set()
        for i, a in enumerate(vias):
            for b in vias[i + 1 :]:
                if a.net != b.net and a.overlaps(b):
                    colliding.add(a.net)
                    colliding.add(b.net)
        if colliding:
            nets = sorted(colliding)
            violations.append(
                Violation(
                    RULE_SHORT,
                    f"vias of nets {', '.join(nets)} collide at {point}",
                    nets=tuple(nets),
                    location=(point.x, point.y),
                )
            )
    for point, vias in by_point.items():
        for wire in _wires_through(by_track, point, layers):
            if any(
                v.net == wire.net and v.spans(wire.layer) for v in vias
            ):
                continue  # the wire's own via/junction sits here
            blockers = sorted(
                {
                    v.net
                    for v in vias
                    if v.net != wire.net and v.spans(wire.layer)
                }
            )
            if blockers:
                other = blockers[0]
                violations.append(
                    Violation(
                        RULE_SHORT,
                        f"wire of net {wire.net} crosses the via/terminal "
                        f"of net {other} at {point} on m{wire.layer}",
                        nets=(wire.net, other),
                        location=(point.x, point.y),
                        layer=wire.layer,
                    )
                )
    return violations


def _wires_through(
    by_track: dict[tuple[int, int], list[Wire]],
    point: Point,
    layers: "list[int]",
) -> list[Wire]:
    """All wires whose metal passes through geometric ``point``."""
    hits = []
    for layer in layers:
        if layer_is_horizontal(layer):
            track, varying = point.y, point.x
        else:
            track, varying = point.x, point.y
        for wire in by_track.get((layer, track), ()):
            if wire.lo <= varying <= wire.hi:
                hits.append(wire)
    return hits


def check_tracks(
    design: ExtractedDesign, grid: "RoutingGrid", bounds: Rect | None = None
) -> list[Violation]:
    """All wiring on defined tracks and inside the layout."""
    violations = []
    vt, ht = grid.vtracks, grid.htracks
    for w in design.wires:
        fixed, varying = (ht, vt) if w.is_horizontal else (vt, ht)
        axis = "y" if w.is_horizontal else "x"
        if not fixed.has(w.track):
            violations.append(
                Violation(
                    RULE_TRACK,
                    f"wire of net {w.net} runs at {axis}={w.track} where "
                    f"m{w.layer} has no track",
                    nets=(w.net,),
                    location=_wire_anchor(w),
                    layer=w.layer,
                )
            )
        for end in (w.lo, w.hi):
            if not varying.has(end):
                violations.append(
                    Violation(
                        RULE_TRACK,
                        f"wire of net {w.net} ends off-track at "
                        f"{_end_point(w, end)}",
                        nets=(w.net,),
                        location=_end_point(w, end),
                        layer=w.layer,
                    )
                )
        if bounds is not None and not bounds.contains_rect(_wire_rect(w)):
            violations.append(
                Violation(
                    RULE_TRACK,
                    f"wire of net {w.net} leaves the layout bounds "
                    f"({w})",
                    nets=(w.net,),
                    location=_wire_anchor(w),
                    layer=w.layer,
                )
            )
    for via in design.vias:
        if not (vt.has(via.x) and ht.has(via.y)):
            violations.append(
                Violation(
                    RULE_TRACK,
                    f"{via.kind} via of net {via.net} at ({via.x},{via.y}) "
                    "is on no track intersection",
                    nets=(via.net,),
                    location=(via.x, via.y),
                )
            )
    return violations


def _wire_anchor(w: Wire) -> tuple[int, int]:
    return (w.lo, w.track) if w.is_horizontal else (w.track, w.lo)


def _end_point(w: Wire, end: int) -> tuple[int, int]:
    return (end, w.track) if w.is_horizontal else (w.track, end)


def _wire_rect(w: Wire) -> Rect:
    if w.is_horizontal:
        return Rect(w.lo, w.track, w.hi, w.track)
    return Rect(w.track, w.lo, w.track, w.hi)


def check_corners(result: "LevelBResult") -> list[Violation]:
    """Claimed corners index real intersections at real turns."""
    violations = []
    grid = result.tig.grid
    nv, nh = grid.num_vtracks, grid.num_htracks
    for routed in result.routed:
        for conn in routed.connections:
            turns = set(conn.path.corners())
            for v_idx, h_idx in conn.corners:
                if not (0 <= v_idx < nv and 0 <= h_idx < nh):
                    violations.append(
                        Violation(
                            RULE_CORNER,
                            f"net {routed.net.name} claims corner at "
                            f"track indices ({v_idx},{h_idx}) outside the "
                            f"{nv}x{nh} grid",
                            nets=(routed.net.name,),
                        )
                    )
                    continue
                point = Point(*grid.coord_of(v_idx, h_idx))
                if point not in turns:
                    violations.append(
                        Violation(
                            RULE_CORNER,
                            f"net {routed.net.name} claims a corner at "
                            f"{point} but its path does not turn there",
                            nets=(routed.net.name,),
                            location=(point.x, point.y),
                        )
                    )
    return violations


def check_obstacles(
    design: ExtractedDesign,
    obstacles: "list[Obstacle] | tuple[Obstacle, ...]",
    grid: "RoutingGrid",
) -> list[Violation]:
    """No wiring through excluded over-cell areas.

    An obstacle blocks the track *intersections* inside its rectangle
    (per direction), so a wire violates only when a blocked
    intersection lies under its metal - matching
    :meth:`RoutingGrid.add_obstacle` exactly, but re-derived from the
    obstacle rectangles rather than the occupancy arrays.
    """
    violations = []
    vt, ht = grid.vtracks, grid.htracks
    for obs in obstacles:
        rect = obs.rect
        label = f" {obs.name!r}" if obs.name else ""
        for w in design.wires:
            if w.is_horizontal:
                if not obs.block_h or not (rect.y1 <= w.track <= rect.y2):
                    continue
                lo, hi = max(w.lo, rect.x1), min(w.hi, rect.x2)
                crossed = lo <= hi and len(vt.index_range(lo, hi)) > 0
            else:
                if not obs.block_v or not (rect.x1 <= w.track <= rect.x2):
                    continue
                lo, hi = max(w.lo, rect.y1), min(w.hi, rect.y2)
                crossed = lo <= hi and len(ht.index_range(lo, hi)) > 0
            if crossed:
                violations.append(
                    Violation(
                        RULE_OBSTACLE,
                        f"wire of net {w.net} crosses blocked area{label} "
                        f"{rect} ({w})",
                        nets=(w.net,),
                        location=_wire_anchor(w),
                        layer=w.layer,
                    )
                )
        if obs.block_h or obs.block_v:
            for via in design.vias:
                if rect.contains_point(via.point):
                    violations.append(
                        Violation(
                            RULE_OBSTACLE,
                            f"{via.kind} via of net {via.net} inside "
                            f"blocked area{label} {rect}",
                            nets=(via.net,),
                            location=(via.x, via.y),
                        )
                    )
    return violations


def _layer_rule(technology: "Technology", layer: int) -> "Layer | None":
    """The technology rule for metal ``layer``, if the stack has one.

    Layers past the technology's stack are ``drc.stack``'s business;
    the width/spacing rules simply skip them.
    """
    try:
        return technology.layer(layer)
    except KeyError:
        return None


def check_widths(
    design: ExtractedDesign,
    technology: "Technology",
    spans: "dict[str, int] | None" = None,
) -> list[Violation]:
    """Every wire's drawn width meets its layer's minimum width rule.

    ``spans`` maps net name to its track span (the net class's width,
    :meth:`~repro.technology.Technology.net_footprint`); missing nets
    default to single-track.  The drawn width of a ``span``-track wire
    is :meth:`~repro.technology.Layer.wire_width`; layers without a
    ``min_width`` rule never fire.
    """
    spans = spans or {}
    violations = []
    for w in design.wires:
        rule = _layer_rule(technology, w.layer)
        if rule is None or rule.min_width is None:
            continue
        drawn = rule.wire_width(spans.get(w.net, 1))
        if drawn < rule.min_width:
            violations.append(
                Violation(
                    RULE_WIDTH,
                    f"wire of net {w.net} on m{w.layer} is {drawn} wide, "
                    f"below the layer minimum {rule.min_width} ({w})",
                    nets=(w.net,),
                    location=_wire_anchor(w),
                    layer=w.layer,
                )
            )
    return violations


def check_spacing(
    design: ExtractedDesign,
    grid: "RoutingGrid",
    technology: "Technology",
    spans: "dict[str, int] | None" = None,
) -> list[Violation]:
    """Width-dependent same-layer spacing between different nets' wires.

    The check runs in *track index space*, the same space the routing
    model legislates in: the grid squeezes extra tracks in at terminal
    coordinates, so geometric separations below the layer pitch are
    legitimate — what the technology demands is whole clear tracks.  A
    ``span``-track wire covers ``span`` adjacent track indices starting
    at its base; its width-dependent spacing
    (:meth:`~repro.technology.Layer.min_spacing_for` of its drawn
    width) translates to :meth:`~repro.technology.Layer.guard_tracks`
    neighbouring indices that must stay free of foreign metal.  For
    every pair of distinct-net wires on the same layer whose
    along-track extents overlap, the index gap must clear the larger of
    the two wires' guards.  Guards are zero on table-free layers, so
    the default technologies can never violate — distinct tracks always
    gap by at least one index (same-track overlap is ``drc.short``).
    """
    spans = spans or {}
    violations = []
    by_layer: dict[int, list[Wire]] = {}
    for w in design.wires:
        by_layer.setdefault(w.layer, []).append(w)
    for layer, wires in sorted(by_layer.items()):
        rule = _layer_rule(technology, layer)
        if rule is None:
            continue
        tracks = grid.htracks if layer_is_horizontal(layer) else grid.vtracks
        # (base index, wire), off-track wires left to drc.track.
        indexed = sorted(
            ((tracks.index_of(w.track), w) for w in wires if tracks.has(w.track)),
            key=lambda pair: (pair[0], pair[1].lo),
        )
        max_span = max((spans.get(w.net, 1) for w in wires), default=1)
        max_guard = rule.guard_tracks(max_span)
        for i, (idx_a, a) in enumerate(indexed):
            span_a = spans.get(a.net, 1)
            a_top = idx_a + span_a - 1
            guard_a = rule.guard_tracks(span_a)
            for idx_b, b in indexed[i + 1 :]:
                gap = idx_b - a_top
                if gap > max_guard:
                    break  # sorted by index: no later wire is closer
                if b.net == a.net or idx_b == idx_a or b.lo > a.hi or b.hi < a.lo:
                    continue
                required = max(guard_a, rule.guard_tracks(spans.get(b.net, 1)))
                if gap <= required:
                    width_a = rule.wire_width(span_a)
                    what = (
                        "overlaps"
                        if gap <= 0
                        else f"is {gap} track(s) from"
                    )
                    violations.append(
                        Violation(
                            RULE_SPACING,
                            f"wire of net {b.net} {what} the "
                            f"{width_a}-wide wire of net {a.net} on "
                            f"m{layer} ({required + 1} clear track(s) "
                            f"required, spacing "
                            f"{rule.min_spacing_for(width_a)})",
                            nets=(a.net, b.net),
                            location=_wire_anchor(b),
                            layer=layer,
                        )
                    )
    return violations


def check_stacks(
    design: ExtractedDesign, num_planes: int = 1
) -> list[Violation]:
    """Cross-plane via-stack legality over the extracted geometry.

    With stacked over-cell planes, every piece of metal and every via
    span must fit the reserved-layer stack the result claims to use:

    * a wire's layer must belong to one of the ``num_planes`` planes;
    * a corner or junction via must span exactly its plane's layer
      pair (it connects one vertical layer to its partner above);
    * a terminal stack must start at the cell pin
      (:data:`~repro.check.extract.TERMINAL_BASE_LAYER`) and top out at
      the horizontal layer of a routed plane.
    """
    violations = []
    _, top_layer = plane_layers(num_planes - 1)
    for w in design.wires:
        if not VERTICAL_LAYER <= w.layer <= top_layer:
            violations.append(
                Violation(
                    RULE_STACK,
                    f"wire of net {w.net} sits on m{w.layer}, outside "
                    f"the {num_planes}-plane over-cell stack "
                    f"(m{VERTICAL_LAYER}-m{top_layer})",
                    nets=(w.net,),
                    location=(
                        (w.lo, w.track) if w.is_horizontal else (w.track, w.lo)
                    ),
                    layer=w.layer,
                )
            )
    for via in design.vias:
        span = f"m{via.lo_layer}-m{via.hi_layer}"
        if via.lo_layer > via.hi_layer:
            violations.append(
                Violation(
                    RULE_STACK,
                    f"{via.kind} via of net {via.net} at {via.point} has "
                    f"an inverted layer span {span}",
                    nets=(via.net,),
                    location=(via.x, via.y),
                )
            )
            continue
        if via.kind in (VIA_CORNER, VIA_JUNCTION):
            legal = (
                via.hi_layer == via.lo_layer + 1
                and not layer_is_horizontal(via.lo_layer)
                and VERTICAL_LAYER <= via.lo_layer
                and via.hi_layer <= top_layer
            )
            if not legal:
                violations.append(
                    Violation(
                        RULE_STACK,
                        f"{via.kind} via of net {via.net} at {via.point} "
                        f"spans {span}, not one plane's layer pair of "
                        f"the {num_planes}-plane stack",
                        nets=(via.net,),
                        location=(via.x, via.y),
                    )
                )
        else:  # terminal stack
            legal = (
                via.lo_layer == TERMINAL_BASE_LAYER
                and layer_is_horizontal(via.hi_layer)
                and HORIZONTAL_LAYER <= via.hi_layer <= top_layer
            )
            if not legal:
                violations.append(
                    Violation(
                        RULE_STACK,
                        f"terminal stack of net {via.net} at {via.point} "
                        f"spans {span}; expected m{TERMINAL_BASE_LAYER} up "
                        "to a routed plane's horizontal layer "
                        f"(at most m{top_layer})",
                        nets=(via.net,),
                        location=(via.x, via.y),
                    )
                )
    return violations
