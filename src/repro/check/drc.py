"""Geometry design-rule checks over extracted wiring.

Four rules, all operating on the :class:`~repro.check.extract.ExtractedDesign`
(never on occupancy state):

``drc.short``
    Same-layer overlap of two nets' wires (a single shared grid cell is
    a short - each intersection has one slot per direction), and via or
    terminal-stack conflicts: a via occupies both slots, so foreign
    wiring through its point on either layer shorts.
``drc.track``
    Wiring geometry must lie on defined routing tracks and inside the
    layout bounds.
``drc.corner``
    Every claimed corner must index a real track intersection and sit
    at a direction change of its own connection's path.
``drc.obstacle``
    No wiring through over-cell areas excluded for its direction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.extract import (
    HORIZONTAL_LAYER,
    VERTICAL_LAYER,
    ExtractedDesign,
    Via,
    Wire,
)
from repro.check.rules import RULE_CORNER, RULE_OBSTACLE, RULE_SHORT, RULE_TRACK
from repro.check.violations import Violation
from repro.geometry import Point, Rect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import LevelBResult, Obstacle
    from repro.grid import RoutingGrid


def check_shorts(design: ExtractedDesign) -> list[Violation]:
    """Same-layer overlaps and via conflicts between different nets."""
    violations = []
    by_track = design.by_track()
    # Wire-wire overlap: one sweep per (layer, track), O(k log k) each.
    for (layer, track), wires in by_track.items():
        max_hi = None
        holder: Wire | None = None
        for w in wires:
            if (
                holder is not None
                and max_hi is not None
                and w.lo <= max_hi
                and w.net != holder.net
            ):
                at = (
                    (w.lo, track)
                    if layer == HORIZONTAL_LAYER
                    else (track, w.lo)
                )
                violations.append(
                    Violation(
                        RULE_SHORT,
                        f"nets {holder.net} and {w.net} overlap on "
                        f"m{layer} track {track} "
                        f"[{w.lo},{min(w.hi, max_hi)}]",
                        nets=(holder.net, w.net),
                        location=at,
                        layer=layer,
                    )
                )
            if max_hi is None or w.hi > max_hi:
                max_hi, holder = w.hi, w
    # Via conflicts: point collisions and foreign wiring through a via.
    by_point: dict[Point, list[Via]] = {}
    for via in design.vias:
        by_point.setdefault(via.point, []).append(via)
    for point, vias in by_point.items():
        nets = sorted({v.net for v in vias})
        if len(nets) > 1:
            violations.append(
                Violation(
                    RULE_SHORT,
                    f"vias of nets {', '.join(nets)} collide at {point}",
                    nets=tuple(nets),
                    location=(point.x, point.y),
                )
            )
    for point, vias in by_point.items():
        via_nets = {v.net for v in vias}
        for wire in _wires_through(by_track, point):
            if wire.net not in via_nets:
                other = sorted(via_nets)[0]
                violations.append(
                    Violation(
                        RULE_SHORT,
                        f"wire of net {wire.net} crosses the via/terminal "
                        f"of net {other} at {point} on m{wire.layer}",
                        nets=(wire.net, other),
                        location=(point.x, point.y),
                        layer=wire.layer,
                    )
                )
    return violations


def _wires_through(
    by_track: dict[tuple[int, int], list[Wire]], point: Point
) -> list[Wire]:
    """All wires whose metal passes through geometric ``point``."""
    hits = []
    for wire in by_track.get((HORIZONTAL_LAYER, point.y), ()):
        if wire.lo <= point.x <= wire.hi:
            hits.append(wire)
    for wire in by_track.get((VERTICAL_LAYER, point.x), ()):
        if wire.lo <= point.y <= wire.hi:
            hits.append(wire)
    return hits


def check_tracks(
    design: ExtractedDesign, grid: "RoutingGrid", bounds: Rect | None = None
) -> list[Violation]:
    """All wiring on defined tracks and inside the layout."""
    violations = []
    vt, ht = grid.vtracks, grid.htracks
    for w in design.wires:
        fixed, varying = (ht, vt) if w.is_horizontal else (vt, ht)
        axis = "y" if w.is_horizontal else "x"
        if not fixed.has(w.track):
            violations.append(
                Violation(
                    RULE_TRACK,
                    f"wire of net {w.net} runs at {axis}={w.track} where "
                    f"m{w.layer} has no track",
                    nets=(w.net,),
                    location=_wire_anchor(w),
                    layer=w.layer,
                )
            )
        for end in (w.lo, w.hi):
            if not varying.has(end):
                violations.append(
                    Violation(
                        RULE_TRACK,
                        f"wire of net {w.net} ends off-track at "
                        f"{_end_point(w, end)}",
                        nets=(w.net,),
                        location=_end_point(w, end),
                        layer=w.layer,
                    )
                )
        if bounds is not None and not bounds.contains_rect(_wire_rect(w)):
            violations.append(
                Violation(
                    RULE_TRACK,
                    f"wire of net {w.net} leaves the layout bounds "
                    f"({w})",
                    nets=(w.net,),
                    location=_wire_anchor(w),
                    layer=w.layer,
                )
            )
    for via in design.vias:
        if not (vt.has(via.x) and ht.has(via.y)):
            violations.append(
                Violation(
                    RULE_TRACK,
                    f"{via.kind} via of net {via.net} at ({via.x},{via.y}) "
                    "is on no track intersection",
                    nets=(via.net,),
                    location=(via.x, via.y),
                )
            )
    return violations


def _wire_anchor(w: Wire) -> tuple[int, int]:
    return (w.lo, w.track) if w.is_horizontal else (w.track, w.lo)


def _end_point(w: Wire, end: int) -> tuple[int, int]:
    return (end, w.track) if w.is_horizontal else (w.track, end)


def _wire_rect(w: Wire) -> Rect:
    if w.is_horizontal:
        return Rect(w.lo, w.track, w.hi, w.track)
    return Rect(w.track, w.lo, w.track, w.hi)


def check_corners(result: "LevelBResult") -> list[Violation]:
    """Claimed corners index real intersections at real turns."""
    violations = []
    grid = result.tig.grid
    nv, nh = grid.num_vtracks, grid.num_htracks
    for routed in result.routed:
        for conn in routed.connections:
            turns = set(conn.path.corners())
            for v_idx, h_idx in conn.corners:
                if not (0 <= v_idx < nv and 0 <= h_idx < nh):
                    violations.append(
                        Violation(
                            RULE_CORNER,
                            f"net {routed.net.name} claims corner at "
                            f"track indices ({v_idx},{h_idx}) outside the "
                            f"{nv}x{nh} grid",
                            nets=(routed.net.name,),
                        )
                    )
                    continue
                point = Point(*grid.coord_of(v_idx, h_idx))
                if point not in turns:
                    violations.append(
                        Violation(
                            RULE_CORNER,
                            f"net {routed.net.name} claims a corner at "
                            f"{point} but its path does not turn there",
                            nets=(routed.net.name,),
                            location=(point.x, point.y),
                        )
                    )
    return violations


def check_obstacles(
    design: ExtractedDesign,
    obstacles: "list[Obstacle] | tuple[Obstacle, ...]",
    grid: "RoutingGrid",
) -> list[Violation]:
    """No wiring through excluded over-cell areas.

    An obstacle blocks the track *intersections* inside its rectangle
    (per direction), so a wire violates only when a blocked
    intersection lies under its metal - matching
    :meth:`RoutingGrid.add_obstacle` exactly, but re-derived from the
    obstacle rectangles rather than the occupancy arrays.
    """
    violations = []
    vt, ht = grid.vtracks, grid.htracks
    for obs in obstacles:
        rect = obs.rect
        label = f" {obs.name!r}" if obs.name else ""
        for w in design.wires:
            if w.is_horizontal:
                if not obs.block_h or not (rect.y1 <= w.track <= rect.y2):
                    continue
                lo, hi = max(w.lo, rect.x1), min(w.hi, rect.x2)
                crossed = lo <= hi and len(vt.index_range(lo, hi)) > 0
            else:
                if not obs.block_v or not (rect.x1 <= w.track <= rect.x2):
                    continue
                lo, hi = max(w.lo, rect.y1), min(w.hi, rect.y2)
                crossed = lo <= hi and len(ht.index_range(lo, hi)) > 0
            if crossed:
                violations.append(
                    Violation(
                        RULE_OBSTACLE,
                        f"wire of net {w.net} crosses blocked area{label} "
                        f"{rect} ({w})",
                        nets=(w.net,),
                        location=_wire_anchor(w),
                        layer=w.layer,
                    )
                )
        if obs.block_h or obs.block_v:
            for via in design.vias:
                if rect.contains_point(via.point):
                    violations.append(
                        Violation(
                            RULE_OBSTACLE,
                            f"{via.kind} via of net {via.net} inside "
                            f"blocked area{label} {rect}",
                            nets=(via.net,),
                            location=(via.x, via.y),
                        )
                    )
    return violations
