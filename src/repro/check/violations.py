"""Structured violation records and check reports.

A :class:`Violation` is one rule breach at one location; a
:class:`CheckReport` aggregates a whole verification run.  Violations
are plain data so they serialise cleanly (CLI ``--json``, instrument
events) and so tests can assert on rule ids rather than message text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a violation is.

    ``ERROR`` breaks correctness (shorts, opens, off-track wiring);
    ``WARNING`` flags suspect but not provably broken state;
    ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Violation:
    """One rule breach.

    Attributes
    ----------
    rule:
        A rule id from :mod:`repro.check.rules`.
    message:
        Human-readable description with concrete coordinates/names.
    severity:
        See :class:`Severity`; defaults to ``ERROR``.
    nets:
        Names of the nets involved (offender first when meaningful).
    location:
        Geometric ``(x, y)`` anchor of the violation, when one exists.
    layer:
        Metal layer number the violation sits on, when layer-specific.
    """

    rule: str
    message: str
    severity: Severity = Severity.ERROR
    nets: tuple[str, ...] = ()
    location: tuple[int, int] | None = None
    layer: int | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.nets:
            out["nets"] = list(self.nets)
        if self.location is not None:
            out["location"] = list(self.location)
        if self.layer is not None:
            out["layer"] = self.layer
        return out

    def __str__(self) -> str:
        where = f" at {self.location}" if self.location is not None else ""
        who = f" [{','.join(self.nets)}]" if self.nets else ""
        return f"{self.severity.value.upper()} {self.rule}{where}{who}: {self.message}"


@dataclass
class CheckReport:
    """Aggregate outcome of one verification run."""

    subject: str = ""
    violations: list[Violation] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()

    def extend(self, violations: list[Violation]) -> None:
        self.violations.extend(violations)

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity violation was found."""
        return not any(v.severity is Severity.ERROR for v in self.violations)

    @property
    def error_count(self) -> int:
        return sum(1 for v in self.violations if v.severity is Severity.ERROR)

    def by_rule(self, rule: str) -> list[Violation]:
        return [v for v in self.violations if v.rule == rule]

    def counts(self) -> dict[str, int]:
        """Violation count per rule id (only rules that fired)."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    def summary(self) -> str:
        """One-line human-readable verdict."""
        label = f"{self.subject}: " if self.subject else ""
        if not self.violations:
            return f"{label}CLEAN ({len(self.rules_run)} rules checked)"
        parts = ", ".join(
            f"{rule}={n}" for rule, n in sorted(self.counts().items())
        )
        return (
            f"{label}{self.error_count} error(s), "
            f"{len(self.violations)} violation(s): {parts}"
        )

    def render(self, limit: int = 50) -> str:
        """Multi-line report: summary plus the first ``limit`` violations."""
        lines = [self.summary()]
        lines.extend(f"  {v}" for v in self.violations[:limit])
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "violations": [v.to_dict() for v in self.violations],
        }


class CheckFailure(RuntimeError):
    """Raised by checked mode when the sanitizer finds violations.

    Carries the structured records so handlers need not re-parse the
    message.
    """

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = list(violations)
        head = "; ".join(str(v) for v in self.violations[:3])
        more = (
            f" (+{len(self.violations) - 3} more)"
            if len(self.violations) > 3
            else ""
        )
        super().__init__(f"checked mode: {head}{more}")
