"""Invariant sanitizer: paper-level guarantees and occupancy audits.

Two families live here.  ``check_invariants`` re-derives the section 3
search guarantees from committed paths alone:

``inv.corner_per_track``
    MBFS examines each track at most once, so a connection never turns
    *off* the same track twice.  Only the final track of a path may
    recur (target tracks are re-enterable); maze-rescued connections
    (``expansions_used == -1``) are exempt because Lee search gives no
    such guarantee.
``inv.corner_claim``
    The corner list a connection claims (what the PST corner selector
    priced and what ``commit_path`` stamped into the grid) must equal,
    as a multiset, the geometric direction changes of its path.
``inv.layer``
    Reserved-layer partitioning: exactly the set B nets appear in the
    level B (over-cell plane) result.

``audit_grid`` cross-checks the grid's redundant bookkeeping:

``grid.ledger``
    Replaying every per-net mutation ledger into fresh arrays must
    reproduce the live occupancy exactly (positive cells both ways).
``grid.journal``
    Outside any transaction the undo journal must be empty, and a
    "closed" audit point must not find a transaction still open.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

import numpy as np

from repro.check.rules import (
    RULE_CORNER_CLAIM,
    RULE_CORNER_PER_TRACK,
    RULE_JOURNAL,
    RULE_LAYER,
    RULE_LEDGER,
)
from repro.check.violations import Violation
from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from repro.core.engine import RoutedConnection
    from repro.core.router import LevelBResult
    from repro.geometry.segment import Path
    from repro.grid import RoutingGrid


def _direction_runs(path: "Path") -> list[tuple[str, int]]:
    """Merged direction runs as ``(direction, track)`` pairs.

    Consecutive same-direction segments on the same track are one run;
    degenerate segments never start or split a run.
    """
    runs: list[tuple[str, int]] = []
    for seg in path.segments:
        if seg.is_point:
            continue
        run = ("H", seg.a.y) if seg.is_horizontal else ("V", seg.a.x)
        if not runs or runs[-1] != run:
            runs.append(run)
    return runs


def check_connection_invariants(
    net: str, conn: "RoutedConnection", grid: "RoutingGrid"
) -> list[Violation]:
    """Per-connection paper invariants (corner claim + corner/track)."""
    violations = []
    nv, nh = grid.num_vtracks, grid.num_htracks

    # inv.corner_claim: claimed corners == geometric turns, as multisets.
    claimed = Counter(
        Point(*grid.coord_of(v_idx, h_idx))
        for v_idx, h_idx in conn.corners
        if 0 <= v_idx < nv and 0 <= h_idx < nh
    )
    actual = Counter(conn.path.corners())
    if claimed != actual:
        missing = sorted((actual - claimed).elements())
        extra = sorted((claimed - actual).elements())
        detail = []
        if missing:
            detail.append(f"unclaimed turns {missing}")
        if extra:
            detail.append(f"claims without turns {extra}")
        violations.append(
            Violation(
                RULE_CORNER_CLAIM,
                f"net {net}: claimed corners do not match the path's "
                f"direction changes ({'; '.join(detail)})",
                nets=(net,),
                location=(
                    (missing or extra)[0].x,
                    (missing or extra)[0].y,
                ),
            )
        )

    # inv.corner_per_track: no track departed twice (MBFS guarantee).
    if conn.expansions_used != -1:
        runs = _direction_runs(conn.path)
        seen: set[tuple[str, int]] = set()
        for direction, track in runs[:-1]:  # final track may recur
            if (direction, track) in seen:
                axis = "y" if direction == "H" else "x"
                violations.append(
                    Violation(
                        RULE_CORNER_PER_TRACK,
                        f"net {net}: connection turns off "
                        f"{axis}={track} twice (one corner per track "
                        "violated)",
                        nets=(net,),
                    )
                )
            seen.add((direction, track))
    return violations


def check_invariants(result: "LevelBResult") -> list[Violation]:
    """Paper invariants over every committed connection of a result."""
    grid = result.tig.grid
    violations = []
    for routed in result.routed:
        for conn in routed.connections:
            violations.extend(
                check_connection_invariants(routed.net.name, conn, grid)
            )
    return violations


def check_layer_assignment(
    result: "LevelBResult",
    set_a_names: "Iterable[str]",
    set_b_names: "Iterable[str]",
) -> list[Violation]:
    """Reserved-layer partition: level B carries exactly the set B nets."""
    routed_names = {r.net.name for r in result.routed}
    set_a, set_b = set(set_a_names), set(set_b_names)
    violations = []
    for name in sorted(routed_names & set_a):
        violations.append(
            Violation(
                RULE_LAYER,
                f"set A net {name} was routed over the cells on the "
                "reserved over-cell layers",
                nets=(name,),
            )
        )
    for name in sorted(set_b - routed_names):
        violations.append(
            Violation(
                RULE_LAYER,
                f"set B net {name} is missing from the level B result",
                nets=(name,),
            )
        )
    for name in sorted(routed_names - set_a - set_b):
        violations.append(
            Violation(
                RULE_LAYER,
                f"net {name} in the level B result belongs to neither "
                "partition",
                nets=(name,),
            )
        )
    return violations


def audit_grid(
    grid: "RoutingGrid", *, expect_closed: bool = True
) -> list[Violation]:
    """Occupancy bookkeeping audits: ledger replay + journal balance."""
    violations = []

    # grid.journal - balance first, it is cheap.
    if grid.in_transaction:
        if expect_closed:
            violations.append(
                Violation(
                    RULE_JOURNAL,
                    "a grid transaction is still open at a point where "
                    "all transactions should have completed",
                )
            )
    elif grid.journal_len > 0:
        violations.append(
            Violation(
                RULE_JOURNAL,
                f"{grid.journal_len} undo-journal entries remain with no "
                "open transaction",
            )
        )

    # grid.ledger - replay every net's ledger into fresh arrays.
    snap = grid.snapshot()
    rep_h = np.zeros_like(snap.h_owner)
    rep_v = np.zeros_like(snap.v_owner)
    for net_id in grid.ledgered_net_ids():
        for entry in grid.ledger_entries(net_id):
            tag = entry[0]
            if tag == "h":
                _, h_idx, v_lo, v_hi = entry
                rep_h[h_idx, v_lo : v_hi + 1] = net_id
            elif tag == "v":
                _, v_idx, h_lo, h_hi = entry
                rep_v[v_idx, h_lo : h_hi + 1] = net_id
            else:  # "c": a corner or terminal stack claims both slots
                _, v_idx, h_idx = entry
                rep_h[h_idx, v_idx] = net_id
                rep_v[v_idx, h_idx] = net_id
    for label, rep, live in (
        ("h", rep_h, snap.h_owner),
        ("v", rep_v, snap.v_owner),
    ):
        bad = (rep != live) & ((rep > 0) | (live > 0))
        if bad.any():
            spots = np.argwhere(bad)
            a, b = (int(x) for x in spots[0])
            violations.append(
                Violation(
                    RULE_LEDGER,
                    f"{label}-owner array disagrees with the replayed "
                    f"ledgers at {int(bad.sum())} cell(s); first at "
                    f"index ({a},{b}): live={int(live[a, b])} "
                    f"replayed={int(rep[a, b])}",
                )
            )
    return violations
