"""LVS-lite: rebuild connectivity from extracted geometry.

The netlist says which terminals belong together; the extracted wiring
says what is actually connected.  This pass unions wires and vias into
electrical components using only geometric adjacency:

* two wires on the same ``(layer, track)`` connect when their closed
  spans overlap or share an endpoint (one shared cell is contact);
* a via connects every wire passing through its point on a layer the
  via spans (terminal stacks reach from the cell pin to their net's
  plane, corner vias join one plane's layer pair);
* two vias at the same point connect only when their layer spans
  overlap - vias on disjoint planes stack without touching;
* crossing wires on *different* layers never connect without a via.

Comparing components against the netlist yields three rules:
``lvs.open`` (a claimed-complete net whose terminals split across
components), ``lvs.short`` (one component carrying more than one net)
and ``lvs.dangling`` (metal with no terminal at all).
"""

from __future__ import annotations

from repro.check.extract import (
    VIA_TERMINAL,
    ExtractedDesign,
    layer_is_horizontal,
)
from repro.check.rules import RULE_DANGLING, RULE_MERGED, RULE_OPEN
from repro.check.violations import Severity, Violation


class _DSU:
    """Union-find with path halving."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, a: int) -> int:
        parent = self._parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def check_connectivity(design: ExtractedDesign) -> list[Violation]:
    """Opens, merged nets and dangling metal in one connectivity rebuild."""
    wires, vias = design.wires, design.vias
    n_wires = len(wires)
    dsu = _DSU(n_wires + len(vias))

    # Wire indices grouped per (layer, track), sorted by span.
    groups: dict[tuple[int, int], list[int]] = {}
    for i, w in enumerate(wires):
        groups.setdefault((w.layer, w.track), []).append(i)
    for idxs in groups.values():
        idxs.sort(key=lambda i: (wires[i].lo, wires[i].hi))
        max_hi, max_idx = None, -1
        for i in idxs:
            w = wires[i]
            if max_hi is not None and w.lo <= max_hi:
                dsu.union(max_idx, i)
            if max_hi is None or w.hi > max_hi:
                max_hi, max_idx = w.hi, i

    # Vias: join every spanned layer at their point, and each other
    # when (and only when) their layer spans overlap.
    layers = sorted({layer for layer, _track in groups})
    at_point: dict[tuple[int, int], list[int]] = {}
    for j, via in enumerate(vias):
        node = n_wires + j
        for other in at_point.setdefault((via.x, via.y), []):
            if via.overlaps(vias[other]):
                dsu.union(n_wires + other, node)
        at_point[(via.x, via.y)].append(j)
        for layer in layers:
            if not via.spans(layer):
                continue
            if layer_is_horizontal(layer):
                track, varying = via.y, via.x
            else:
                track, varying = via.x, via.y
            for i in groups.get((layer, track), ()):
                if wires[i].lo <= varying <= wires[i].hi:
                    dsu.union(node, i)

    # Components: who is in each, which nets, any terminal?
    comp_nets: dict[int, set[str]] = {}
    comp_has_wire: dict[int, bool] = {}
    comp_has_term: dict[int, bool] = {}
    for i, w in enumerate(wires):
        root = dsu.find(i)
        comp_nets.setdefault(root, set()).add(w.net)
        comp_has_wire[root] = True
    for j, via in enumerate(vias):
        root = dsu.find(n_wires + j)
        comp_nets.setdefault(root, set()).add(via.net)
        if via.kind == VIA_TERMINAL:
            comp_has_term[root] = True

    violations = []

    # lvs.short - one electrical component, several nets.
    for root, nets in sorted(comp_nets.items()):
        if len(nets) > 1:
            names = sorted(nets)
            violations.append(
                Violation(
                    RULE_MERGED,
                    f"nets {', '.join(names)} are electrically merged "
                    "into one component",
                    nets=tuple(names),
                )
            )

    # lvs.open - terminals of a claimed-complete net split apart.
    term_node: dict[tuple[int, int], int] = {}
    for j, via in enumerate(vias):
        if via.kind == VIA_TERMINAL:
            term_node[(via.x, via.y)] = n_wires + j
    for net, points in sorted(design.terminals.items()):
        if not design.complete.get(net, False) or len(points) < 2:
            continue
        roots = {dsu.find(term_node[(p.x, p.y)]) for p in points}
        if len(roots) > 1:
            violations.append(
                Violation(
                    RULE_OPEN,
                    f"net {net} claimed complete but its {len(points)} "
                    f"terminals form {len(roots)} disconnected pieces",
                    nets=(net,),
                    location=(points[0].x, points[0].y),
                )
            )

    # lvs.dangling - metal that reaches no terminal.
    for root, has_wire in sorted(comp_has_wire.items()):
        if has_wire and not comp_has_term.get(root, False):
            names = sorted(comp_nets[root])
            violations.append(
                Violation(
                    RULE_DANGLING,
                    f"orphan wiring of net(s) {', '.join(names)} touches "
                    "no terminal",
                    severity=Severity.WARNING,
                    nets=tuple(names),
                )
            )

    return violations
