"""Reproduction of *A Multi-Layer Router Utilizing Over-Cell Areas*.

Katsadas & Chen, 27th ACM/IEEE Design Automation Conference (DAC), 1990.

The package implements the paper's two-level, four-layer routing
methodology for macro-cell layouts together with every substrate it
depends on:

``repro.geometry``
    Integer Manhattan geometry (points, rectangles, interval algebra).
``repro.technology``
    Metal layer stacks and design rules.
``repro.netlist``
    Cells, pins, nets and the :class:`~repro.netlist.Design` container.
``repro.placement``
    Row/shelf macro-cell placement producing channels.
``repro.channels``
    Two-layer channel routing (left-edge with doglegs, greedy).
``repro.globalroute``
    Channel assignment for the channel-routed (level A) nets.
``repro.grid``
    Non-uniform routing tracks and the ``O(h*v)`` occupancy model.
``repro.core``
    The paper's contribution: the level B over-cell router built on the
    Track Intersection Graph, modified BFS, Path Selection Trees and the
    Steiner-Prim multi-terminal heuristic.
``repro.maze``
    Lee-style maze router baseline.
``repro.steiner``
    Rectilinear spanning/Steiner tree algorithms on point sets.
``repro.partition``
    Net partitioning strategies (set A vs. set B).
``repro.flow``
    End-to-end flows: two-layer baseline, proposed over-cell flow, and
    the optimistic multi-layer channel model of Table 3.
``repro.bench_suite``
    Deterministic synthetic versions of the paper's three examples.
``repro.viz`` / ``repro.reporting``
    ASCII/SVG rendering and table formatting.
"""

from repro.geometry import Interval, Point, Rect
from repro.technology import Layer, Technology
from repro.netlist import Cell, Design, Net, Pin

__version__ = "1.0.0"

__all__ = [
    "Interval",
    "Point",
    "Rect",
    "Layer",
    "Technology",
    "Cell",
    "Design",
    "Net",
    "Pin",
    "__version__",
]
