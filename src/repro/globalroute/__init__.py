"""Global routing for channel-routed (level A / baseline) nets.

Decomposes each net over the row topology of a
:class:`~repro.placement.RowPlacement`: pins facing the same channel
become pins of that channel's :class:`~repro.channels.ChannelProblem`;
nets spanning several channels travel vertically through one of the two
side channels, entering each touched channel through a dedicated *exit
column* appended at the channel end.  Side-channel widths follow from
the peak number of verticals passing any row.
"""

from repro.globalroute.router import (
    ChannelSpec,
    GlobalRoute,
    GlobalRouter,
    NetSideUse,
)

__all__ = ["GlobalRouter", "GlobalRoute", "ChannelSpec", "NetSideUse"]
