"""Global routing for channel-routed (level A / baseline) nets.

Decomposes each net over the row topology of a
:class:`~repro.placement.RowPlacement`: pins facing the same channel
become pins of that channel's :class:`~repro.channels.ChannelProblem`;
nets spanning several channels travel vertically through one of the two
side channels, entering each touched channel through a dedicated *exit
column* appended at the channel end.  Side-channel widths follow from
the peak number of verticals passing any row.

:mod:`repro.globalroute.regions` extends the package upward: a coarse
capacity-annotated region model over the level B grid (after arXiv
1810.12789) that the routability probe and the hierarchical dispatch
mode consume (docs/SCALING.md).
"""

from repro.globalroute.router import (
    ChannelSpec,
    GlobalRoute,
    GlobalRouter,
    NetSideUse,
)
from repro.globalroute.regions import (
    DEFAULT_REGION_TRACKS,
    Region,
    RegionModel,
)

__all__ = [
    "GlobalRouter",
    "GlobalRoute",
    "ChannelSpec",
    "NetSideUse",
    "Region",
    "RegionModel",
    "DEFAULT_REGION_TRACKS",
]
