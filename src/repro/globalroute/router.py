"""Channel decomposition of nets over a row placement."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.channels import ChannelProblem
from repro.netlist import Edge, Net, Pin
from repro.placement import RowPlacement


@dataclass(frozen=True)
class _ChannelPin:
    """A pin entry into a channel, in column units."""

    net_id: int
    column: int
    from_top: bool  # True: enters through the channel's top boundary


@dataclass
class NetSideUse:
    """A net's vertical run through a side channel."""

    net_id: int
    side: str  # "L" or "R"
    min_ch: int
    max_ch: int
    exits: list[tuple[int, int]] = field(default_factory=list)  # (channel, column)

    @property
    def rows_crossed(self) -> range:
        """Row indices the vertical passes (between its end channels)."""
        return range(self.min_ch, self.max_ch)


@dataclass
class ChannelSpec:
    """One channel's routing problem plus its column coordinate map."""

    index: int
    problem: ChannelProblem
    base_col: int  # column index of core x = 0

    def column_x(self, col: int, pitch: int) -> int:
        """Core-relative x of a column (exit columns land outside)."""
        return (col - self.base_col) * pitch


@dataclass
class GlobalRoute:
    """The full channel decomposition of a net set."""

    specs: list[ChannelSpec]
    side_uses: dict[int, NetSideUse]
    pitch: int

    def crossing_profile(self, side: str, num_rows: int) -> list[int]:
        """Verticals passing each row on one side channel."""
        profile = [0] * num_rows
        for use in self.side_uses.values():
            if use.side != side:
                continue
            for row in use.rows_crossed:
                if 0 <= row < num_rows:
                    profile[row] += 1
        return profile

    def side_widths(self, num_rows: int) -> tuple[int, int]:
        """(left, right) side channel widths in lambda.

        One vertical wiring track per simultaneous crossing, plus one
        track of clearance when the side channel is used at all.
        """
        widths = []
        for side in ("L", "R"):
            peak = max(self.crossing_profile(side, num_rows), default=0)
            widths.append((peak + 1) * self.pitch if peak else 0)
        return widths[0], widths[1]

    def side_wire_length(
        self, row_heights: Sequence[int], channel_heights: Sequence[int]
    ) -> int:
        """Total vertical wire length inside the side channels.

        A net spanning channels ``[i, j]`` runs past rows ``i..j-1``
        and through channels ``i+1..j-1``; the horizontal stubs into
        the side channel are charged half a side-channel width each by
        the flow layer, not here.
        """
        total = 0
        for use in self.side_uses.values():
            for row in use.rows_crossed:
                total += row_heights[row]
            for ch in range(use.min_ch + 1, use.max_ch):
                total += channel_heights[ch]
        return total


class GlobalRouter:
    """Builds a :class:`GlobalRoute` for a net set over a placement."""

    def __init__(self, placement: RowPlacement, pitch: int | None = None) -> None:
        self.placement = placement
        self.pitch = pitch if pitch is not None else placement.pitch

    # ------------------------------------------------------------------
    def route(self, nets: Sequence[Net], net_ids: dict[Net, int]) -> GlobalRoute:
        """Decompose ``nets``; ids must be positive and unique."""
        channel_pins: dict[int, list[_ChannelPin]] = {
            i: [] for i in range(self.placement.channel_count)
        }
        side_uses: dict[int, NetSideUse] = {}
        for net in sorted(nets, key=lambda n: n.name):
            if net.degree < 2:
                continue
            net_id = net_ids[net]
            entries = [self._pin_entry(net_id, pin) for pin in net.pins]
            channels = sorted({e[0] for e in entries})
            for ch, pin in ((e[0], e[1]) for e in entries):
                channel_pins[ch].append(pin)
            if len(channels) > 1:
                side_uses[net_id] = NetSideUse(
                    net_id=net_id,
                    side=self._pick_side(entries),
                    min_ch=channels[0],
                    max_ch=channels[-1],
                )
        specs = [
            self._build_spec(index, pins, side_uses)
            for index, pins in sorted(channel_pins.items())
        ]
        return GlobalRoute(specs=specs, side_uses=side_uses, pitch=self.pitch)

    # ------------------------------------------------------------------
    def _pin_entry(self, net_id: int, pin: Pin) -> tuple[int, _ChannelPin]:
        if not pin.edge.is_horizontal:
            raise ValueError(
                f"pin {pin.full_name}: LEFT/RIGHT pins are not supported by "
                "the row/channel topology"
            )
        row = self.placement.row_of_cell[pin.cell.name]
        on_top_edge = pin.edge is Edge.TOP
        channel = self.placement.channel_of_pin_row(row, on_top_edge)
        x = self.placement.cell_x[pin.cell.name] + pin.offset
        if x % self.pitch:
            raise ValueError(
                f"pin {pin.full_name} x={x} is off the {self.pitch}-lambda grid"
            )
        # A TOP-edge pin enters the channel above it from below.
        return channel, _ChannelPin(
            net_id=net_id, column=x // self.pitch, from_top=not on_top_edge
        )

    def _pick_side(self, entries: list[tuple[int, _ChannelPin]]) -> str:
        """Side channel minimising total horizontal reach (ties go left)."""
        width_cols = max(1, self.placement.core_width // self.pitch)
        left_cost = sum(pin.column for _, pin in entries)
        right_cost = sum(width_cols - pin.column for _, pin in entries)
        return "L" if left_cost <= right_cost else "R"

    def _build_spec(
        self,
        index: int,
        pins: list[_ChannelPin],
        side_uses: dict[int, NetSideUse],
    ) -> ChannelSpec:
        top: dict[int, int] = {}
        bottom: dict[int, int] = {}
        for pin in sorted(pins, key=lambda p: (p.column, p.from_top, p.net_id)):
            target = top if pin.from_top else bottom
            col = pin.column
            # Resolve same-side column collisions between different nets
            # by nudging right to the nearest free column.
            while target.get(col, pin.net_id) != pin.net_id:
                col += 1
            target[col] = pin.net_id
        cols = list(top) + list(bottom)
        min_col = min(cols) if cols else 0
        max_col = max(cols) if cols else 0
        # Exit columns: left exits stack just before min_col, right
        # exits just after max_col, one column per exiting net.
        exiting = sorted(
            use.net_id
            for use in side_uses.values()
            if use.min_ch <= index <= use.max_ch
            and any(p.net_id == use.net_id for p in pins)
        )
        left_exit_col = min_col - 1
        right_exit_col = max_col + 1
        for net_id in exiting:
            use = side_uses[net_id]
            if use.side == "L":
                col = left_exit_col
                left_exit_col -= 1
            else:
                col = right_exit_col
                right_exit_col += 1
            top[col] = net_id  # exits modelled as top-side virtual pins
            use.exits.append((index, col))
        all_cols = list(top) + list(bottom)
        base = -min(all_cols) if all_cols and min(all_cols) < 0 else 0
        problem = ChannelProblem.from_pin_lists(
            top_pins=[(c + base, n) for c, n in top.items()],
            bottom_pins=[(c + base, n) for c, n in bottom.items()],
        )
        if base:
            for use in side_uses.values():
                use.exits = [
                    (ch, col + base) if ch == index else (ch, col)
                    for ch, col in use.exits
                ]
        return ChannelSpec(index=index, problem=problem, base_col=base)
