"""The coarse region model for hierarchical level B routing.

"Early Routability Assessment in VLSI Floorplans" (PAPERS.md, arXiv
1810.12789) estimates routability before detailed routing by tiling
the floorplan into regions, annotating each with its geometric routing
*capacity*, and comparing that against the *demand* the netlist's
bounding boxes project onto it.  This module is that model scaled down
to the over-cell grid: the track index space is tiled into coarse
square regions (``region_tracks`` tracks a side), every net is assigned
to the region holding the centre of its padded read window, and each
region carries a capacity/demand pair.

Two consumers:

:func:`repro.flow.routability_probe`
    Reports the region occupancy profile — region count, peak
    utilization, overflowed regions — as an early congestion signal
    alongside the probe's completion figures.

:class:`repro.dispatch.WaveSpeculator`
    In hierarchical mode the wave planner walks candidate nets
    region-by-region instead of linearly down the canonical order:
    nets from *different* regions rarely have overlapping read
    windows, so region-aware scanning finds large disjoint waves in
    designs far too big for a linear ``scan_ahead`` prefix to cover.

The model is purely advisory.  It never touches occupancy state and
nothing about the routed geometry depends on it — the dispatch merge
contract (byte-equality validation + canonical-order replay) is what
keeps hierarchical results bit-identical to flat ones; the region
model only changes *which* disjoint work is discovered first
(docs/SCALING.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

__all__ = ["Region", "RegionModel", "DEFAULT_REGION_TRACKS"]

#: Default region edge length in tracks.  Coarse enough that a
#: scale-tier grid has hundreds (not tens of thousands) of regions,
#: fine enough that one region rarely spans more than a few cells of
#: the floorplan.
DEFAULT_REGION_TRACKS = 32


@dataclass(frozen=True)
class Region:
    """One coarse tile of the track index space.

    ``capacity`` counts the routing tracks threading the tile (its
    horizontal plus its vertical tracks — the classic global-routing
    edge-capacity measure); ``demand`` charges every net whose window
    overlaps the tile one horizontal and one vertical track, the
    minimum a route crossing the tile consumes.
    """

    row: int
    col: int
    v_lo: int
    v_hi: int
    h_lo: int
    h_hi: int
    capacity: int
    demand: int = 0

    @property
    def utilization(self) -> float:
        return self.demand / self.capacity if self.capacity else 0.0

    @property
    def overflowed(self) -> bool:
        return self.demand > self.capacity


class RegionModel:
    """Region tiling + net assignment for one routing grid.

    Build once per routing run with :meth:`build`; the model is
    immutable afterwards.  Assignment is deterministic: a net belongs
    to the region containing its window centre, ties broken by the
    flooring integer division itself.
    """

    def __init__(
        self,
        num_vtracks: int,
        num_htracks: int,
        region_tracks: int = DEFAULT_REGION_TRACKS,
    ) -> None:
        if region_tracks < 1:
            raise ValueError(f"region_tracks must be >= 1, got {region_tracks}")
        self.num_vtracks = num_vtracks
        self.num_htracks = num_htracks
        self.region_tracks = region_tracks
        self.cols = max(1, -(-num_vtracks // region_tracks))
        self.rows = max(1, -(-num_htracks // region_tracks))
        self._demand: dict[int, int] = {}
        self._assignment: dict[int, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        num_vtracks: int,
        num_htracks: int,
        windows: Mapping[int, tuple[int, int, int, int]],
        region_tracks: int = DEFAULT_REGION_TRACKS,
    ) -> "RegionModel":
        """Assign every net window to a region and accumulate demand.

        ``windows`` maps ``net_id`` to the net's padded read window as
        ``(v_lo, v_hi, h_lo, h_hi)`` inclusive track indices (the same
        rectangle :func:`repro.dispatch.net_window` computes).  Demand
        lands on *every* region the window overlaps; assignment uses
        the window centre only.
        """
        model = cls(num_vtracks, num_htracks, region_tracks)
        for net_id in sorted(windows):
            v_lo, v_hi, h_lo, h_hi = windows[net_id]
            model._assignment[net_id] = model.region_at(
                (v_lo + v_hi) // 2, (h_lo + h_hi) // 2
            )
            for rid in model.regions_touching(v_lo, v_hi, h_lo, h_hi):
                # One horizontal + one vertical track per crossing net:
                # the minimum a route through the tile consumes.
                model._demand[rid] = model._demand.get(rid, 0) + 2
        return model

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return self.rows * self.cols

    def region_at(self, v_idx: int, h_idx: int) -> int:
        """Region id of the tile containing track ``(v_idx, h_idx)``."""
        col = min(v_idx // self.region_tracks, self.cols - 1)
        row = min(h_idx // self.region_tracks, self.rows - 1)
        return row * self.cols + col

    def bounds_of(self, rid: int) -> tuple[int, int, int, int]:
        """Inclusive track bounds ``(v_lo, v_hi, h_lo, h_hi)`` of a tile."""
        row, col = divmod(rid, self.cols)
        v_lo = col * self.region_tracks
        h_lo = row * self.region_tracks
        v_hi = min(v_lo + self.region_tracks, self.num_vtracks) - 1
        h_hi = min(h_lo + self.region_tracks, self.num_htracks) - 1
        return v_lo, v_hi, h_lo, h_hi

    def regions_touching(
        self, v_lo: int, v_hi: int, h_lo: int, h_hi: int
    ) -> list[int]:
        """All region ids a track rectangle overlaps, row-major order."""
        c_lo = min(max(v_lo, 0) // self.region_tracks, self.cols - 1)
        c_hi = min(max(v_hi, 0) // self.region_tracks, self.cols - 1)
        r_lo = min(max(h_lo, 0) // self.region_tracks, self.rows - 1)
        r_hi = min(max(h_hi, 0) // self.region_tracks, self.rows - 1)
        return [
            r * self.cols + c
            for r in range(r_lo, r_hi + 1)
            for c in range(c_lo, c_hi + 1)
        ]

    # ------------------------------------------------------------------
    # Assignment and occupancy profile
    # ------------------------------------------------------------------
    def region_of(self, net_id: int, default: int = -1) -> int:
        """The region a net was assigned to (``default`` if unknown)."""
        return self._assignment.get(net_id, default)

    def assigned_nets(self, rid: int) -> list[int]:
        """Net ids assigned to a region, ascending."""
        return sorted(
            n for n, r in self._assignment.items() if r == rid
        )

    def capacity(self, rid: int) -> int:
        """Tracks threading a tile: its horizontal plus vertical tracks."""
        v_lo, v_hi, h_lo, h_hi = self.bounds_of(rid)
        return (v_hi - v_lo + 1) + (h_hi - h_lo + 1)

    def demand(self, rid: int) -> int:
        return self._demand.get(rid, 0)

    def region(self, rid: int) -> Region:
        """The full capacity/demand annotation of one tile."""
        row, col = divmod(rid, self.cols)
        v_lo, v_hi, h_lo, h_hi = self.bounds_of(rid)
        return Region(
            row=row,
            col=col,
            v_lo=v_lo,
            v_hi=v_hi,
            h_lo=h_lo,
            h_hi=h_hi,
            capacity=self.capacity(rid),
            demand=self.demand(rid),
        )

    def occupied_regions(self) -> list[int]:
        """Region ids with at least one assigned net, ascending."""
        return sorted(set(self._assignment.values()))

    def overflowed_regions(self) -> list[int]:
        """Regions whose projected demand exceeds geometric capacity."""
        return sorted(
            rid for rid in self._demand if self.region(rid).overflowed
        )

    def peak_utilization(self) -> float:
        """The busiest region's demand/capacity ratio."""
        if not self._demand:
            return 0.0
        return max(self.region(rid).utilization for rid in self._demand)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegionModel({self.rows}x{self.cols} regions of "
            f"{self.region_tracks} tracks, "
            f"{len(self._assignment)} nets assigned)"
        )
