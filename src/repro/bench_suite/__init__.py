"""Deterministic synthetic versions of the paper's three examples.

The paper evaluates on two MCNC macro-cell benchmarks (ami33 and Xerox,
from Preas' DAC'87 benchmark set) and an industrial chip (ex3).  The
original placement/netlist data is not redistributable, so this package
generates layouts matching each example's *published statistics* - cell
count, net count, and the exact level A partition the paper reports
(ami33: 4 nets averaging 44.25 pins; Xerox: 21 @ 9.19; ex3: 56 @ 3.23).
The routers only see geometry and netlist structure, so matching those
statistics exercises identical code paths; see DESIGN.md section 2.
"""

from repro.bench_suite.generator import (
    DENSE_TIERS,
    SCALE_TIERS,
    WIDE_TIERS,
    SuiteProfile,
    ami33_like,
    dense_design,
    dense_profile,
    design_seed,
    ex3_like,
    make_design,
    random_corpus,
    random_design,
    scale_design,
    scale_profile,
    wide_design,
    wide_profile,
    xerox_like,
)

SUITES = {
    "ami33": ami33_like,
    "xerox": xerox_like,
    "ex3": ex3_like,
}

__all__ = [
    "SuiteProfile",
    "design_seed",
    "make_design",
    "random_corpus",
    "random_design",
    "ami33_like",
    "xerox_like",
    "ex3_like",
    "SUITES",
    "SCALE_TIERS",
    "scale_design",
    "scale_profile",
    "DENSE_TIERS",
    "dense_design",
    "dense_profile",
    "WIDE_TIERS",
    "wide_design",
    "wide_profile",
]
