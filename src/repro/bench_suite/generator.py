"""Synthetic macro-cell benchmark generation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.netlist import Cell, Design, Edge

PITCH = 8  # pin grid; matches the metal1/metal2 pitch of the presets


@dataclass(frozen=True)
class SuiteProfile:
    """Recipe for one synthetic benchmark.

    ``critical_pin_counts`` lists the exact pin count of every level A
    (critical) net, so the per-example statistics the paper reports can
    be matched exactly.  Regular nets draw their pin counts from
    ``regular_pin_weights`` (pin count -> weight).
    """

    name: str
    seed: int
    num_cells: int
    cell_width_range: tuple[int, int]
    cell_height_range: tuple[int, int]
    num_regular_nets: int
    critical_pin_counts: tuple[int, ...] = ()
    regular_pin_weights: dict[int, float] = field(
        default_factory=lambda: {2: 0.62, 3: 0.26, 4: 0.12}
    )
    locality: float = 0.65  # probability a pin stays near the net's seed cell


def ami33_like() -> Design:
    """ami33: 33 macros, 123 nets; 4 critical nets averaging 44.25 pins."""
    return make_design(
        SuiteProfile(
            name="ami33",
            seed=33,
            num_cells=33,
            cell_width_range=(96, 240),
            cell_height_range=(64, 160),
            num_regular_nets=119,
            critical_pin_counts=(45, 44, 44, 44),  # mean 44.25, as reported
        )
    )


def xerox_like() -> Design:
    """Xerox: 10 large macros, 203 nets; 21 critical nets @ 9.19 pins."""
    # 21 nets totalling 193 pins: mean 9.19 as the paper reports.
    counts = tuple(10 if i < 4 else 9 for i in range(21))
    return make_design(
        SuiteProfile(
            name="xerox",
            seed=10,
            num_cells=10,
            cell_width_range=(320, 640),
            cell_height_range=(240, 480),
            num_regular_nets=182,
            critical_pin_counts=counts,
        )
    )


def ex3_like() -> Design:
    """ex3: an industrial macro chip; 56 critical nets @ 3.23 pins."""
    # 56 nets totalling 181 pins: mean 3.232, matching the paper's 3.23.
    counts = tuple(4 if i < 13 else 3 for i in range(56))
    return make_design(
        SuiteProfile(
            name="ex3",
            seed=3,
            num_cells=40,
            cell_width_range=(112, 288),
            cell_height_range=(80, 192),
            num_regular_nets=194,
            critical_pin_counts=counts,
        )
    )


def random_design(
    name: str,
    *,
    seed: int,
    num_cells: int = 12,
    num_nets: int = 40,
    num_critical: int = 2,
) -> Design:
    """A small randomized design for tests and fuzzing."""
    rng = random.Random(seed)
    criticals = tuple(rng.randint(4, 8) for _ in range(num_critical))
    return make_design(
        SuiteProfile(
            name=name,
            seed=seed,
            num_cells=num_cells,
            cell_width_range=(64, 160),
            cell_height_range=(48, 112),
            num_regular_nets=num_nets - num_critical,
            critical_pin_counts=criticals,
        )
    )


# ----------------------------------------------------------------------
def make_design(profile: SuiteProfile) -> Design:
    """Instantiate a profile into a validated, unplaced design."""
    rng = random.Random(profile.seed)
    design = Design(profile.name)
    allocator = _PinAllocator(rng)
    for i in range(profile.num_cells):
        width = _snap(rng.randint(*profile.cell_width_range))
        height = _snap(rng.randint(*profile.cell_height_range))
        cell = design.add_cell(f"cell{i:02d}", width, height)
        allocator.register(cell)
    net_no = 0
    for count in profile.critical_pin_counts:
        net = design.add_net(f"crit{net_no:03d}", is_critical=True)
        _populate_net(design, net, count, allocator, rng, profile.locality)
        net_no += 1
    weights = profile.regular_pin_weights
    choices = sorted(weights)
    weight_list = [weights[c] for c in choices]
    for i in range(profile.num_regular_nets):
        count = rng.choices(choices, weights=weight_list)[0]
        net = design.add_net(f"net{i:03d}")
        _populate_net(design, net, count, allocator, rng, profile.locality)
    design.check()
    return design


class _PinAllocator:
    """Hands out free pin slots on cell TOP/BOTTOM edges.

    Slots sit on the ``PITCH`` grid strictly inside the edge so pins of
    neighbouring cells can never coincide.  Slot order is shuffled per
    edge for spatial spread, deterministically from the design seed.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.slots: dict[tuple[str, Edge], list[int]] = {}
        self.cells: list[Cell] = []
        self._pin_serial: dict[str, int] = {}

    def register(self, cell: Cell) -> None:
        self.cells.append(cell)
        for edge in (Edge.TOP, Edge.BOTTOM):
            offsets = list(range(PITCH, cell.width, PITCH))
            self.rng.shuffle(offsets)
            self.slots[(cell.name, edge)] = offsets
        self._pin_serial[cell.name] = 0

    def free_slots(self, cell: Cell) -> int:
        return len(self.slots[(cell.name, Edge.TOP)]) + len(
            self.slots[(cell.name, Edge.BOTTOM)]
        )

    def take(self, design: Design, cell: Cell):
        """Allocate one pin on ``cell`` (random edge with free slots)."""
        edges = [
            e
            for e in (Edge.TOP, Edge.BOTTOM)
            if self.slots[(cell.name, e)]
        ]
        if not edges:
            raise RuntimeError(f"cell {cell.name} has no free pin slots")
        edge = self.rng.choice(edges)
        offset = self.slots[(cell.name, edge)].pop()
        serial = self._pin_serial[cell.name]
        self._pin_serial[cell.name] = serial + 1
        return design.add_pin(cell.name, f"p{serial:03d}", edge, offset)


def _populate_net(
    design: Design,
    net,
    pin_count: int,
    allocator: _PinAllocator,
    rng: random.Random,
    locality: float,
) -> None:
    """Attach ``pin_count`` pins with a locality bias around a seed cell."""
    cells = allocator.cells
    seed_cell = rng.choice(cells)
    seed_index = cells.index(seed_cell)
    for _ in range(pin_count):
        cell = None
        for _attempt in range(32):
            if rng.random() < locality:
                # Neighbourhood of the seed cell in registration order.
                lo = max(0, seed_index - 3)
                hi = min(len(cells), seed_index + 4)
                candidate = rng.choice(cells[lo:hi])
            else:
                candidate = rng.choice(cells)
            if allocator.free_slots(candidate):
                cell = candidate
                break
        if cell is None:
            # Fall back to any cell with space (deterministic order).
            spacious = [c for c in cells if allocator.free_slots(c)]
            if not spacious:
                raise RuntimeError("benchmark profile exceeds total pin capacity")
            cell = spacious[0]
        net.add_pin(allocator.take(design, cell))


def _snap(value: int) -> int:
    return max(PITCH * 2, (value // PITCH) * PITCH)
