"""Delay models for routed and estimated nets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist import Net
from repro.technology import Technology
from repro.timing.rctree import RCTree


@dataclass(frozen=True)
class DriverModel:
    """A simple linear driver plus sink load model.

    ``resistance`` in ohms (the driving gate's output resistance),
    ``sink_cap`` in fF per sink pin, ``via_resistance`` in ohms per
    layer-change via along the route.
    """

    resistance: float = 200.0
    sink_cap: float = 5.0
    via_resistance: float = 1.5

    def __post_init__(self) -> None:
        if min(self.resistance, self.sink_cap, self.via_resistance) < 0:
            raise ValueError("driver parameters must be non-negative")


_DRIVER_NODE = "__driver__"


def build_levelb_rctree(
    routed, technology: Technology, driver: DriverModel = DriverModel()
) -> RCTree:
    """RC tree of one level B :class:`~repro.core.router.RoutedNet`.

    Horizontal segments take metal4's parasitics, vertical segments
    metal3's (the reserved-layer model).  Corner via resistance is
    folded into the segment entering the corner.  The driver attaches
    at the net's first pin; every other pin gets a sink load.
    """
    m3 = technology.layer(3)
    m4 = technology.layer(4)
    tree = RCTree()
    source = routed.net.pins[0].position
    tree.add_node_cap(source, 0.0)
    for conn in routed.connections:
        first = True
        for seg in conn.path:
            if seg.is_point:
                continue
            layer = m4 if seg.is_horizontal else m3
            resistance = layer.resistance_per_lambda * seg.length
            if not first:
                resistance += driver.via_resistance  # corner via entering
            capacitance = layer.cap_per_lambda * seg.length
            tree.add_wire(seg.a, seg.b, resistance, capacitance)
            first = False
    for pin in routed.net.pins[1:]:
        tree.add_node_cap(pin.position, driver.sink_cap)
    tree.add_wire(
        _DRIVER_NODE, source, driver.resistance, 0.0
    )
    return tree


def levelb_net_delays(
    routed, technology: Technology, driver: DriverModel = DriverModel()
) -> dict[str, float]:
    """Elmore delay (ps) from the net's first pin to every other pin.

    Returns ``{pin full name: delay_ps}``; pins whose connection failed
    (incomplete nets) are omitted.
    """
    if not routed.connections:
        return {}
    tree = build_levelb_rctree(routed, technology, driver)
    out: dict[str, float] = {}
    for pin in routed.net.pins[1:]:
        position = pin.position
        if not tree.contains(position):
            continue
        try:
            out[pin.full_name] = tree.elmore_delay(_DRIVER_NODE, position)
        except ValueError:
            continue
    return out


def channel_net_delay_estimate(
    net: Net, technology: Technology, driver: DriverModel = DriverModel()
) -> float:
    """Lumped delay estimate (ps) for a channel-routed (m1/m2) net.

    Channel routing geometry does not map pin-to-pin paths directly
    (trunks serve all pins), so the estimate uses the net's
    half-perimeter as wire length with averaged m1/m2 parasitics and
    the standard lumped form

        T = R_drv*(C_wire + n*C_sink) + R_wire*(C_wire/2 + n*C_sink).
    """
    length = net.half_perimeter
    m1 = technology.layer(1)
    m2 = technology.layer(2)
    r_per = (m1.resistance_per_lambda + m2.resistance_per_lambda) / 2.0
    c_per = (m1.cap_per_lambda + m2.cap_per_lambda) / 2.0
    r_wire = r_per * length
    c_wire = c_per * length
    sinks = max(1, net.degree - 1)
    c_sinks = sinks * driver.sink_cap
    delay_ffs = driver.resistance * (c_wire + c_sinks) + r_wire * (
        c_wire / 2.0 + c_sinks
    )
    return delay_ffs / 1000.0
