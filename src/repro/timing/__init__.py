"""Propagation-delay estimation for routed nets.

The paper's delay motivation (section 2): "Control of propagation
delays may dictate this net partitioning process such that local
interconnections are included in set A, while long distance
interconnections are routed in level B using wider lines to yield
shorter propagation delays."

This package quantifies that claim: :class:`RCTree` computes Elmore
delays over a routed net's actual segment geometry with per-layer
resistance/capacitance (wider, thicker m3/m4 lines are several times
less resistive per lambda than m1/m2), and the helpers build RC trees
from level B results or estimate channel-routed delays from net
half-perimeters.
"""

from repro.timing.rctree import RCTree
from repro.timing.delay import (
    DriverModel,
    channel_net_delay_estimate,
    levelb_net_delays,
)

__all__ = [
    "RCTree",
    "DriverModel",
    "levelb_net_delays",
    "channel_net_delay_estimate",
]
