"""Elmore delay over RC trees.

Units: resistance in ohms, capacitance in femtofarads, so delays come
out in femtoseconds (:meth:`RCTree.elmore_delay` returns picoseconds
for readability).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Hashable


@dataclass(frozen=True)
class _Edge:
    other: Hashable
    resistance: float
    capacitance: float


class RCTree:
    """A distributed RC network with tree topology.

    Wires are added with :meth:`add_wire`; each wire's capacitance is
    split half/half onto its endpoints (the standard pi-model
    reduction).  Extra lumped loads (sink pins, via stacks) attach with
    :meth:`add_node_cap`.  The Elmore delay from a root to a node is

        sum over edges e on the root-node path of R_e * C_subtree(e)

    where ``C_subtree(e)`` is all capacitance hanging below ``e`` when
    the tree is rooted at the source.
    """

    def __init__(self) -> None:
        self._adj: dict[Hashable, list[_Edge]] = {}
        self._node_cap: dict[Hashable, float] = {}

    # ------------------------------------------------------------------
    def add_wire(
        self, a: Hashable, b: Hashable, resistance: float, capacitance: float
    ) -> None:
        """Add a wire between nodes ``a`` and ``b``."""
        if resistance < 0 or capacitance < 0:
            raise ValueError("R and C must be non-negative")
        if a == b:
            raise ValueError("wire endpoints must differ")
        self._adj.setdefault(a, []).append(_Edge(b, resistance, capacitance))
        self._adj.setdefault(b, []).append(_Edge(a, resistance, capacitance))
        self._node_cap[a] = self._node_cap.get(a, 0.0) + capacitance / 2.0
        self._node_cap[b] = self._node_cap.get(b, 0.0) + capacitance / 2.0

    def add_node_cap(self, node: Hashable, capacitance: float) -> None:
        """Attach a lumped load (e.g. a sink pin) at ``node``."""
        if capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        self._adj.setdefault(node, [])
        self._node_cap[node] = self._node_cap.get(node, 0.0) + capacitance

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Hashable]:
        return list(self._adj)

    def total_cap(self) -> float:
        """Total capacitance in the network (fF)."""
        return sum(self._node_cap.values())

    def contains(self, node: Hashable) -> bool:
        return node in self._adj

    # ------------------------------------------------------------------
    def elmore_delay(self, source: Hashable, sink: Hashable) -> float:
        """Elmore delay from ``source`` to ``sink`` in picoseconds.

        The network is rooted at ``source`` by breadth-first search;
        redundant edges (loops created by e.g. maze rescues touching a
        routed trunk twice) are ignored, keeping the first-discovered
        spanning tree.  Raises :class:`KeyError` when either node is
        absent and :class:`ValueError` when the sink is unreachable.
        """
        if source not in self._adj:
            raise KeyError(f"source {source!r} not in tree")
        if sink not in self._adj:
            raise KeyError(f"sink {sink!r} not in tree")
        parent: dict[Hashable, tuple[Hashable, float] | None] = {source: None}
        order: list[Hashable] = [source]
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge in self._adj[node]:
                if edge.other in parent:
                    continue
                parent[edge.other] = (node, edge.resistance)
                order.append(edge.other)
                queue.append(edge.other)
        if sink not in parent:
            raise ValueError(f"sink {sink!r} unreachable from {source!r}")
        # Subtree capacitance by reverse BFS order.
        subtree = {node: self._node_cap.get(node, 0.0) for node in order}
        for node in reversed(order):
            link = parent[node]
            if link is not None:
                subtree[link[0]] += subtree[node]
        # Walk sink -> source accumulating R * C_subtree.
        delay_ffs = 0.0
        node = sink
        while parent[node] is not None:
            up, resistance = parent[node]
            delay_ffs += resistance * subtree[node]
            node = up
        return delay_ffs / 1000.0  # ohm*fF = fs; report ps

    def max_delay(self, source: Hashable) -> tuple[Hashable | None, float]:
        """The worst Elmore delay from ``source`` over all nodes."""
        worst_node: Hashable | None = None
        worst = 0.0
        for node in self._adj:
            if node == source:
                continue
            try:
                delay = self.elmore_delay(source, node)
            except ValueError:
                continue
            if delay > worst:
                worst, worst_node = delay, node
        return worst_node, worst
