"""A stack of routing grids, one per over-cell reserved-layer plane.

The paper's TIG state is a single two-dimensional occupancy array
because the paper routes on a single metal3/metal4 plane.  With the
generalized :class:`~repro.technology.stack.LayerStack` the over-cell
area carries several such planes, and each gets its *own*
:class:`~repro.grid.occupancy.RoutingGrid` — its own ownership arrays,
per-net ledgers, undo journal and snapshots — while all planes share
the same track coordinate sets.

Sharing the tracks is deliberate: the TIG's grid is generated at the
plane-0 (metal3/metal4) pitch plus one track through every terminal
(paper section 3), and upper planes in this model inherit that lattice
rather than re-gridding at their own pitch.  A plane's coarser physical
pitch still matters — it enters the area and delay models through the
:class:`~repro.technology.layers.Layer` objects — but keeping one index
space across planes is what lets a terminal's through-via stack be a
single ``(v_idx, h_idx)`` claim on every plane below its net's plane,
and lets windows, snapshots and congestion maps line up across planes.

``PlaneSet`` is intentionally thin.  Routing code works on one plane's
``RoutingGrid`` at a time (a net never changes plane mid-route); the
set exists to fan aggregate operations — transactions, snapshots,
obstacles — across all planes at once.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator

from repro.geometry import Rect
from repro.grid.occupancy import GridSnapshot, GridTransaction, RoutingGrid
from repro.grid.tracks import TrackSet

__all__ = ["PlaneSet", "PlaneSetTransaction"]


class PlaneSetTransaction:
    """One savepoint spanning every plane's undo journal.

    Thin aggregate over per-plane :class:`GridTransaction` objects;
    commit/rollback fan out in a fixed plane order so nested use keeps
    the savepoint discipline on every plane.
    """

    __slots__ = ("_txns", "closed")

    def __init__(self, txns: tuple[GridTransaction, ...]) -> None:
        self._txns = txns
        self.closed = False

    def commit(self) -> None:
        # Innermost-first per plane: these were begun in plane order,
        # so they are each plane's top savepoint and close cleanly.
        for txn in self._txns:
            txn.commit()
        self.closed = True

    def rollback(self) -> int:
        undone = 0
        for txn in self._txns:
            undone += txn.rollback()
        self.closed = True
        return undone


class PlaneSet:
    """N routing grids over shared track coordinate sets.

    Plane 0 is the paper's metal3/metal4 grid; :attr:`grids` is ordered
    lowest plane first.  ``PlaneSet`` with ``num_planes=1`` behaves
    exactly like the single grid it wraps — the single-plane flow never
    pays for the generalization.
    """

    def __init__(
        self,
        vtracks: TrackSet,
        htracks: TrackSet,
        num_planes: int = 1,
        backend: str = "dense",
    ) -> None:
        if num_planes < 1:
            raise ValueError(f"need at least one plane, got {num_planes}")
        self.vtracks = vtracks
        self.htracks = htracks
        self.grids: tuple[RoutingGrid, ...] = tuple(
            RoutingGrid(vtracks, htracks, backend=backend)
            for _ in range(num_planes)
        )

    @property
    def backend_name(self) -> str:
        """Registry name of the planes' shared storage backend."""
        return self.grids[0].backend_name

    def memory_bytes(self) -> int:
        """Bytes held by every plane's occupancy stores, summed."""
        return sum(g.memory_bytes() for g in self.grids)

    def dense_equiv_bytes(self) -> int:
        """Dense-array footprint of the whole stack (all planes)."""
        return sum(g.dense_equiv_bytes() for g in self.grids)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.grids)

    def __iter__(self) -> Iterator[RoutingGrid]:
        return iter(self.grids)

    def __getitem__(self, plane: int) -> RoutingGrid:
        if not 0 <= plane < len(self.grids):
            raise IndexError(
                f"plane {plane} out of range [0, {len(self.grids) - 1}]"
            )
        return self.grids[plane]

    @property
    def num_planes(self) -> int:
        return len(self.grids)

    # ------------------------------------------------------------------
    # Aggregate transactional face (mirrors RoutingGrid's)
    # ------------------------------------------------------------------
    def begin(self) -> PlaneSetTransaction:
        """Open one savepoint across every plane."""
        return PlaneSetTransaction(tuple(g.begin() for g in self.grids))

    @contextmanager
    def transaction(self) -> Iterator[PlaneSetTransaction]:
        """Commit on success, roll every plane back on exception."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if not txn.closed:
                txn.rollback()
            raise
        if not txn.closed:
            txn.commit()

    @property
    def in_transaction(self) -> bool:
        return any(g.in_transaction for g in self.grids)

    def snapshot(self) -> tuple[GridSnapshot, ...]:
        """Immutable per-plane copies, lowest plane first."""
        return tuple(g.snapshot() for g in self.grids)

    def matches(self, snaps: tuple[GridSnapshot, ...]) -> bool:
        """Is every plane byte-identical to its snapshot?"""
        if len(snaps) != len(self.grids):
            return False
        return all(g.matches(s) for g, s in zip(self.grids, snaps))

    # ------------------------------------------------------------------
    # Aggregate mutation
    # ------------------------------------------------------------------
    def add_obstacle(
        self, rect: Rect, *, block_h: bool = True, block_v: bool = True
    ) -> int:
        """Block ``rect`` on every plane.

        Obstacles model cells/macros the over-cell area must avoid;
        absent per-plane obstacle input the model is conservative and
        blocks the full stack.  Returns plane 0's newly-blocked count
        (identical on every plane).
        """
        blocked = 0
        for grid in self.grids:
            blocked = grid.add_obstacle(rect, block_h=block_h, block_v=block_v)
        return blocked

    def utilization(self) -> float:
        """Mean slot utilization across planes."""
        return sum(g.utilization() for g in self.grids) / len(self.grids)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlaneSet({len(self.grids)} planes, "
            f"{len(self.vtracks)}x{len(self.htracks)} tracks)"
        )
