"""The two-dimensional occupancy array behind the Track Intersection Graph.

The paper stores the TIG state "in a two-dimensional array which is
updated after the completion of each two-terminal connection", an
``O(t)`` operation per segment (section 3.4).  This module is that
array.

Model
-----
Under the reserved-layer model the two over-cell layers split by
direction (metal4 horizontal, metal3 vertical), so each track
intersection has **two independent ownership slots**:

* ``h`` - a horizontal wire passing through the intersection,
* ``v`` - a vertical wire passing through it.

Wires of *different* nets may cross at an intersection (different
layers), but may not share a track span.  A **corner** (m3-m4 via)
occupies both slots, as does a terminal's via stack.  Obstacles may
block one direction (e.g. pre-existing m4 power straps inside a macro)
or both (sensitive circuitry excluded by the user).

Slot encoding: ``0`` free, ``-1`` obstacle, ``>= 1`` net id.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.geometry import Interval, Rect
from repro.grid.tracks import TrackSet

FREE: int = 0
OBSTACLE: int = -1


class RoutingGrid:
    """Track sets plus occupancy state for one routing layer pair.

    Horizontal scans are row slices of ``_h_owner`` (indexed
    ``[h_track][v_track]``) and vertical scans are row slices of
    ``_v_owner`` (indexed ``[v_track][h_track]``), so both are cache
    friendly and vectorisable with numpy.
    """

    def __init__(self, vtracks: TrackSet, htracks: TrackSet) -> None:
        self.vtracks = vtracks
        self.htracks = htracks
        nv, nh = len(vtracks), len(htracks)
        self._h_owner = np.zeros((nh, nv), dtype=np.int32)
        self._v_owner = np.zeros((nv, nh), dtype=np.int32)
        # Unrouted-terminal density map, read by the cost function's
        # ``dup`` term. Indexed [h][v] like _h_owner.
        self._unrouted_terms = np.zeros((nh, nv), dtype=np.int16)

    # ------------------------------------------------------------------
    # Basic shape / coordinate helpers
    # ------------------------------------------------------------------
    @property
    def num_vtracks(self) -> int:
        return len(self.vtracks)

    @property
    def num_htracks(self) -> int:
        return len(self.htracks)

    @property
    def num_intersections(self) -> int:
        return self.num_vtracks * self.num_htracks

    def coord_of(self, v_idx: int, h_idx: int) -> Tuple[int, int]:
        """Geometric ``(x, y)`` of intersection ``(v_idx, h_idx)``."""
        return self.vtracks[v_idx], self.htracks[h_idx]

    # ------------------------------------------------------------------
    # Obstacles and terminals
    # ------------------------------------------------------------------
    def add_obstacle(
        self, rect: Rect, *, block_h: bool = True, block_v: bool = True
    ) -> int:
        """Block every intersection inside ``rect`` (coordinate space).

        Returns the number of intersections newly blocked.  Blocking a
        cell already owned by a net raises: obstacles must be declared
        before routing starts.
        """
        vr = self.vtracks.index_range(rect.x1, rect.x2)
        hr = self.htracks.index_range(rect.y1, rect.y2)
        if len(vr) == 0 or len(hr) == 0:
            return 0
        blocked = 0
        h_block = self._h_owner[hr.start : hr.stop, vr.start : vr.stop]
        v_block = self._v_owner[vr.start : vr.stop, hr.start : hr.stop]
        if block_h:
            if (h_block > 0).any():
                raise ValueError("obstacle overlaps routed wiring (h)")
            blocked += int((h_block != OBSTACLE).sum())
            h_block[:] = OBSTACLE
        if block_v:
            if (v_block > 0).any():
                raise ValueError("obstacle overlaps routed wiring (v)")
            if not block_h:
                blocked += int((v_block != OBSTACLE).sum())
            v_block[:] = OBSTACLE
        return blocked

    def reserve_terminal(self, v_idx: int, h_idx: int, net_id: int) -> None:
        """Claim an intersection for a net's terminal via stack.

        Terminal connections from level B nets down to m1/m2 happen
        only at terminal locations (paper section 2), so the stack
        blocks both directions for every other net from the outset.
        """
        if net_id < 1:
            raise ValueError("net ids must be >= 1")
        for arr, r, c in (
            (self._h_owner, h_idx, v_idx),
            (self._v_owner, v_idx, h_idx),
        ):
            current = arr[r, c]
            if current not in (FREE, net_id):
                raise ValueError(
                    f"terminal at ({v_idx},{h_idx}) collides with owner {current}"
                )
            arr[r, c] = net_id
        self._unrouted_terms[h_idx, v_idx] += 1

    def mark_terminal_routed(self, v_idx: int, h_idx: int) -> None:
        """Drop one unrouted-terminal mark at an intersection."""
        if self._unrouted_terms[h_idx, v_idx] > 0:
            self._unrouted_terms[h_idx, v_idx] -= 1

    # ------------------------------------------------------------------
    # Availability queries
    # ------------------------------------------------------------------
    def corner_free(self, v_idx: int, h_idx: int, net_id: int) -> bool:
        """Can ``net_id`` place a corner/via at this intersection?"""
        h = self._h_owner[h_idx, v_idx]
        v = self._v_owner[v_idx, h_idx]
        return h in (FREE, net_id) and v in (FREE, net_id)

    def h_slot(self, v_idx: int, h_idx: int) -> int:
        return int(self._h_owner[h_idx, v_idx])

    def v_slot(self, v_idx: int, h_idx: int) -> int:
        return int(self._v_owner[v_idx, h_idx])

    def free_span_h(
        self, h_idx: int, v_idx: int, net_id: int, within: Optional[Interval] = None
    ) -> Optional[Interval]:
        """Maximal v-index interval around ``v_idx`` usable on h-track.

        A cell is usable when its horizontal slot is free or already
        owned by ``net_id``.  Returns ``None`` when the entry cell
        itself is unusable.  ``within`` clips the search window (the
        paper bounds each search to a rectangle around the terminals).
        """
        row = self._h_owner[h_idx]
        return _free_span(row, v_idx, net_id, within)

    def free_span_v(
        self, v_idx: int, h_idx: int, net_id: int, within: Optional[Interval] = None
    ) -> Optional[Interval]:
        """Maximal h-index interval around ``h_idx`` usable on v-track."""
        row = self._v_owner[v_idx]
        return _free_span(row, h_idx, net_id, within)

    def corner_candidates_on_v(
        self, v_idx: int, h_lo: int, h_hi: int, net_id: int
    ) -> List[int]:
        """h-indices in ``[h_lo, h_hi]`` where ``net_id`` may corner.

        Batched form of :meth:`corner_free` along a vertical track -
        the level B search's hot path.  Spans here are typically a few
        dozen cells, where a plain-Python scan over ``tolist()`` beats
        numpy's fixed per-op overhead by several times.
        """
        h = self._h_owner[h_lo : h_hi + 1, v_idx].tolist()
        v = self._v_owner[v_idx, h_lo : h_hi + 1].tolist()
        allowed = (FREE, net_id)
        return [
            h_lo + i
            for i, (hs, vs) in enumerate(zip(h, v))
            if hs in allowed and vs in allowed
        ]

    def corner_candidates_on_h(
        self, h_idx: int, v_lo: int, v_hi: int, net_id: int
    ) -> List[int]:
        """v-indices in ``[v_lo, v_hi]`` where ``net_id`` may corner."""
        h = self._h_owner[h_idx, v_lo : v_hi + 1].tolist()
        v = self._v_owner[v_lo : v_hi + 1, h_idx].tolist()
        allowed = (FREE, net_id)
        return [
            v_lo + i
            for i, (hs, vs) in enumerate(zip(h, v))
            if hs in allowed and vs in allowed
        ]

    def span_usable_h(
        self, h_idx: int, v_lo: int, v_hi: int, net_id: int
    ) -> bool:
        """Is the whole h-track span ``[v_lo, v_hi]`` usable by the net?"""
        if v_lo > v_hi:
            v_lo, v_hi = v_hi, v_lo
        row = self._h_owner[h_idx, v_lo : v_hi + 1]
        return bool(((row == FREE) | (row == net_id)).all())

    def span_usable_v(
        self, v_idx: int, h_lo: int, h_hi: int, net_id: int
    ) -> bool:
        if h_lo > h_hi:
            h_lo, h_hi = h_hi, h_lo
        row = self._v_owner[v_idx, h_lo : h_hi + 1]
        return bool(((row == FREE) | (row == net_id)).all())

    # ------------------------------------------------------------------
    # Mutation (the O(t)-per-segment update of section 3.4)
    # ------------------------------------------------------------------
    def occupy_h(self, h_idx: int, v_lo: int, v_hi: int, net_id: int) -> None:
        """Claim the horizontal slots of a span for ``net_id``."""
        if v_lo > v_hi:
            v_lo, v_hi = v_hi, v_lo
        row = self._h_owner[h_idx, v_lo : v_hi + 1]
        foreign = (row != FREE) & (row != net_id)
        if foreign.any():
            raise ValueError(
                f"h-track {h_idx} span [{v_lo},{v_hi}] not free for net {net_id}"
            )
        row[:] = net_id

    def occupy_v(self, v_idx: int, h_lo: int, h_hi: int, net_id: int) -> None:
        """Claim the vertical slots of a span for ``net_id``."""
        if h_lo > h_hi:
            h_lo, h_hi = h_hi, h_lo
        row = self._v_owner[v_idx, h_lo : h_hi + 1]
        foreign = (row != FREE) & (row != net_id)
        if foreign.any():
            raise ValueError(
                f"v-track {v_idx} span [{h_lo},{h_hi}] not free for net {net_id}"
            )
        row[:] = net_id

    def occupy_corner(self, v_idx: int, h_idx: int, net_id: int) -> None:
        """Claim both slots at an intersection (an m3-m4 via)."""
        if not self.corner_free(v_idx, h_idx, net_id):
            raise ValueError(f"corner ({v_idx},{h_idx}) not free for net {net_id}")
        self._h_owner[h_idx, v_idx] = net_id
        self._v_owner[v_idx, h_idx] = net_id

    def clear_net(self, net_id: int) -> int:
        """Remove every slot owned by ``net_id`` (rip-up).

        Returns the number of slots freed.  The caller is responsible
        for re-reserving the net's terminals afterwards.
        """
        if net_id < 1:
            raise ValueError("net ids must be >= 1")
        freed = 0
        for arr in (self._h_owner, self._v_owner):
            mask = arr == net_id
            freed += int(mask.sum())
            arr[mask] = FREE
        return freed

    def owners_near(self, v_idx: int, h_idx: int, radius: int) -> List[int]:
        """Net ids wired within ``radius`` tracks of an intersection."""
        hw, vw = self._window(v_idx, h_idx, radius)
        h = self._h_owner[hw, vw]
        v = self._v_owner[vw, hw]
        ids = set(np.unique(h)) | set(np.unique(v))
        return sorted(int(i) for i in ids if i > 0)

    # ------------------------------------------------------------------
    # Cost-model statistics (drg / dup / acf inputs)
    # ------------------------------------------------------------------
    def routed_density_near(self, v_idx: int, h_idx: int, radius: int) -> float:
        """Fraction of slots near an intersection used by routed nets.

        Input to the ``drg`` term: corners close to existing wiring are
        penalised.
        """
        hw, vw = self._window(v_idx, h_idx, radius)
        h = self._h_owner[hw, vw]
        v = self._v_owner[vw, hw].T
        used = (h > 0).sum() + (v > 0).sum()
        return float(used) / float(2 * h.size)

    def unrouted_terminals_near(self, v_idx: int, h_idx: int, radius: int) -> int:
        """Count of unrouted terminals near an intersection (``dup``)."""
        hw, vw = self._window(v_idx, h_idx, radius)
        return int(self._unrouted_terms[hw, vw].sum())

    def congestion_near(self, v_idx: int, h_idx: int, radius: int) -> float:
        """Fraction of *unusable* slots (routed or obstacle) nearby.

        Input to the area congestion factor ``acf``.
        """
        hw, vw = self._window(v_idx, h_idx, radius)
        h = self._h_owner[hw, vw]
        v = self._v_owner[vw, hw].T
        busy = (h != FREE).sum() + (v != FREE).sum()
        return float(busy) / float(2 * h.size)

    def _window(self, v_idx: int, h_idx: int, radius: int) -> Tuple[slice, slice]:
        h_lo = max(0, h_idx - radius)
        h_hi = min(self.num_htracks - 1, h_idx + radius)
        v_lo = max(0, v_idx - radius)
        v_hi = min(self.num_vtracks - 1, v_idx + radius)
        return slice(h_lo, h_hi + 1), slice(v_lo, v_hi + 1)

    # ------------------------------------------------------------------
    # Whole-grid statistics
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of all slots carrying routed wiring."""
        used = int((self._h_owner > 0).sum()) + int((self._v_owner > 0).sum())
        return used / float(2 * self.num_intersections)

    def owners(self) -> List[int]:
        """Sorted list of net ids present anywhere on the grid."""
        ids = set(np.unique(self._h_owner)) | set(np.unique(self._v_owner))
        return sorted(int(i) for i in ids if i > 0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutingGrid({self.num_vtracks}x{self.num_htracks} tracks, "
            f"{self.utilization():.1%} used)"
        )


def _free_span(
    row: np.ndarray, idx: int, net_id: int, within: Optional[Interval]
) -> Optional[Interval]:
    """Maximal usable index interval around ``idx`` in a slot row.

    Implemented as an outward scan over ``tolist()`` of the clipped
    window: search windows are small (a terminal bounding box plus
    margin), so this beats numpy's per-op overhead on the hot path.
    """
    lo_bound = 0 if within is None else max(0, within.lo)
    hi_bound = len(row) - 1 if within is None else min(len(row) - 1, within.hi)
    if not lo_bound <= idx <= hi_bound:
        return None
    win = row[lo_bound : hi_bound + 1].tolist()
    allowed = (FREE, net_id)
    pos = idx - lo_bound
    if win[pos] not in allowed:
        return None
    lo = pos
    while lo > 0 and win[lo - 1] in allowed:
        lo -= 1
    hi = pos
    last = len(win) - 1
    while hi < last and win[hi + 1] in allowed:
        hi += 1
    return Interval(lo + lo_bound, hi + lo_bound)
