"""The two-dimensional occupancy array behind the Track Intersection Graph.

The paper stores the TIG state "in a two-dimensional array which is
updated after the completion of each two-terminal connection", an
``O(t)`` operation per segment (section 3.4).  This module is that
array, plus the **transactional state layer** the routing stack builds
on: every mutation is recorded in a per-net ledger (so rip-up is
``O(cells the net touches)``, never a full-array scan) and, while a
:class:`GridTransaction` is open, in an undo journal (so speculative
route/undo cycles - refinement, rip-up-and-reroute, what-if routability
probes - roll back in time proportional to the cells they touched).

Model
-----
Under the reserved-layer model the two over-cell layers split by
direction (metal4 horizontal, metal3 vertical), so each track
intersection has **two independent ownership slots**:

* ``h`` - a horizontal wire passing through the intersection,
* ``v`` - a vertical wire passing through it.

Wires of *different* nets may cross at an intersection (different
layers), but may not share a track span.  A **corner** (m3-m4 via)
occupies both slots, as does a terminal's via stack.  Obstacles may
block one direction (e.g. pre-existing m4 power straps inside a macro)
or both (sensitive circuitry excluded by the user).

Slot encoding: ``0`` free, ``-1`` obstacle, ``>= 1`` net id.

Transactions
------------
::

    txn = grid.begin()
    grid.rip_net(net_id)
    ... reroute ...
    txn.rollback()          # or txn.commit()

or, context-managed (commit on success, rollback on exception)::

    with grid.transaction():
        grid.commit_path(net_id, points, corners)

Transactions nest as savepoints: an inner ``commit`` merges its journal
entries into the enclosing transaction, an inner ``rollback`` undoes
only the entries recorded since the inner ``begin``.  Journal entries
are recorded only while at least one transaction is open, so the
untransacted fast path pays a single truthiness test per mutation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro import instrument
from repro.instrument.names import (
    OCC_CELLS_TOUCHED,
    TXN_COMMITS,
    TXN_ROLLBACKS,
    TXN_UNDO_CELLS,
)
from repro.geometry import Interval, Rect
from repro.grid.backend import OccupancyBackend, get_backend
from repro.grid.tracks import TrackSet

FREE: int = 0
OBSTACLE: int = -1

# Ledger entry tags: ("h", h_idx, v_lo, v_hi) for a horizontal span,
# ("v", v_idx, h_lo, h_hi) for a vertical span, ("c", v_idx, h_idx)
# for a both-slot claim (corner via or terminal stack).
_LEDGER_H = "h"
_LEDGER_V = "v"
_LEDGER_C = "c"


@dataclass(frozen=True)
class GridSnapshot:
    """An immutable copy of the grid's full mutable state.

    Used for exactness checks around speculative routing: capture one
    before a rip/reroute cycle and compare with :meth:`RoutingGrid.matches`
    after rollback.  Arrays are read-only copies.
    """

    h_owner: np.ndarray
    v_owner: np.ndarray
    unrouted_terms: np.ndarray


@dataclass(frozen=True)
class WindowSnapshot:
    """A copy of the grid's state over one rectangular index window.

    The export format behind speculative parallel routing
    (:mod:`repro.dispatch`): a worker receives only the window a net's
    bounded search can read, rebuilds an isolated sub-grid from it with
    :meth:`to_grid`, and routes on that.  At merge time
    :meth:`RoutingGrid.window_matches` proves the live grid still equals
    the snapshot over the window, which is what makes replaying the
    speculative path equivalent to having routed serially.

    Track coordinates are carried verbatim (true geometric values), so
    geometry produced on the sub-grid is already in global coordinates;
    only track *indices* shift by ``v_lo`` / ``h_lo``.  Arrays keep the
    global net ids and are read-only copies.
    """

    v_lo: int
    h_lo: int
    vcoords: tuple[int, ...]
    hcoords: tuple[int, ...]
    h_owner: np.ndarray
    v_owner: np.ndarray
    unrouted_terms: np.ndarray
    #: Track counts of the grid the window was cut from.  A worker uses
    #: them to tell a window edge that *is* the grid edge (where
    #: clipping a search region is exactly what serial routing does)
    #: from a mid-grid window edge (where clipping would diverge from
    #: serial and the speculation must be abandoned).
    global_vtracks: int = 0
    global_htracks: int = 0

    @property
    def num_vtracks(self) -> int:
        return len(self.vcoords)

    @property
    def num_htracks(self) -> int:
        return len(self.hcoords)

    def to_grid(self) -> "RoutingGrid":
        """An isolated :class:`RoutingGrid` loaded with this window.

        The sub-grid's arrays are fresh writable copies; mutating it
        never touches the grid the snapshot came from.  Per-net ledgers
        start empty: the sub-grid exists to *search*, and speculative
        paths are re-committed on the authoritative grid by the merger.

        Sub-grids are always **dense** regardless of the backend the
        snapshot was cut from: a window is small by construction, so
        the dense representation is both the fastest to search and the
        one whose footprint the wave planner already bounded.
        """
        grid = RoutingGrid(
            TrackSet(self.vcoords), TrackSet(self.hcoords), backend="dense"
        )
        grid._h_owner[:] = self.h_owner
        grid._v_owner[:] = self.v_owner
        grid._unrouted_terms[:] = self.unrouted_terms
        return grid


class GridTransaction:
    """A savepoint over the grid's undo journal.

    Obtained from :meth:`RoutingGrid.begin` (or the
    :meth:`RoutingGrid.transaction` context manager).  Exactly one of
    :meth:`commit` / :meth:`rollback` must be called, innermost
    transaction first; the grid enforces the nesting discipline.
    """

    __slots__ = ("_grid", "_savepoint", "closed")

    def __init__(self, grid: "RoutingGrid", savepoint: int) -> None:
        self._grid = grid
        self._savepoint = savepoint
        self.closed = False

    def commit(self) -> None:
        """Keep every mutation recorded since ``begin``."""
        self._grid._commit_txn(self)

    def rollback(self) -> int:
        """Undo every mutation recorded since ``begin``.

        Returns the number of array cells restored (the ``txn.undo_cells``
        measure) - proportional to the cells the transaction touched,
        never to the grid size.
        """
        return self._grid._rollback_txn(self)


class RoutingGrid:
    """Track sets plus occupancy state for one routing layer pair.

    Horizontal scans are row slices of ``_h_owner`` (indexed
    ``[h_track][v_track]``) and vertical scans are row slices of
    ``_v_owner`` (indexed ``[v_track][h_track]``), so both are cache
    friendly and vectorisable with numpy.

    All mutation goes through :meth:`occupy_h` / :meth:`occupy_v` /
    :meth:`occupy_corner` / :meth:`reserve_terminal` /
    :meth:`mark_terminal_routed` (or :meth:`commit_path`, which batches
    them), which is what lets the per-net ledger and the transaction
    journal stay exact.

    Storage lives in a pluggable :class:`~repro.grid.backend.
    OccupancyBackend` selected by name (``"dense"`` by default,
    ``"sparse"`` for paged first-touch chunks — docs/SCALING.md); the
    grid's logic is backend-agnostic and the backends are pinned
    behaviourally identical by route-digest parity tests.
    """

    def __init__(
        self,
        vtracks: TrackSet,
        htracks: TrackSet,
        backend: str | OccupancyBackend = "dense",
    ) -> None:
        self.vtracks = vtracks
        self.htracks = htracks
        nv, nh = len(vtracks), len(htracks)
        if isinstance(backend, str):
            backend = get_backend(backend)(nh, nv)
        elif (backend.num_htracks, backend.num_vtracks) != (nh, nv):
            raise ValueError(
                f"backend shape ({backend.num_htracks}, {backend.num_vtracks})"
                f" does not match grid ({nh}, {nv})"
            )
        #: The storage engine; all array state lives here.
        self.backend = backend
        self._h_owner = backend.h_owner
        self._v_owner = backend.v_owner
        # Unrouted-terminal density map, read by the cost function's
        # ``dup`` term. Indexed [h][v] like _h_owner.
        self._unrouted_terms = backend.unrouted_terms
        # Per-net mutation ledger: every span/cell a net claimed, in
        # commit order.  Rip-up replays it instead of scanning arrays.
        self._net_ledger: dict[int, list[tuple]] = {}
        # Per-net track footprints (span, guard) for wide net classes.
        # Only nets wider than the default single-track claim appear
        # here, so `.get(net_id)` returning None IS the fast path.
        self._footprints: dict[int, tuple[int, int]] = {}
        # Undo journal + open-transaction stack (savepoint semantics).
        self._journal: list[tuple] = []
        self._txns: list[GridTransaction] = []

    # ------------------------------------------------------------------
    # Basic shape / coordinate helpers
    # ------------------------------------------------------------------
    @property
    def num_vtracks(self) -> int:
        return len(self.vtracks)

    @property
    def num_htracks(self) -> int:
        return len(self.htracks)

    @property
    def num_intersections(self) -> int:
        return self.num_vtracks * self.num_htracks

    @property
    def backend_name(self) -> str:
        """Registry name of the storage backend."""
        return self.backend.name

    def memory_bytes(self) -> int:
        """Bytes the occupancy stores actually hold right now."""
        return self.backend.memory_bytes()

    def dense_equiv_bytes(self) -> int:
        """What dense arrays of this grid's shape would always cost."""
        return self.backend.dense_equiv_bytes()

    def _check_indices(self, v_idx: int, h_idx: int) -> None:
        """Reject out-of-range (notably negative) track indices.

        Both the ``TrackSet`` coordinate lists and the numpy ownership
        arrays accept negative indices via Python wrap-around, which
        silently turns an upstream off-by-one into a claim on the far
        edge of the grid.  Index-taking accessors call this instead.
        """
        if not 0 <= v_idx < self.num_vtracks:
            raise IndexError(
                f"v-track index {v_idx} out of range [0, {self.num_vtracks - 1}]"
            )
        if not 0 <= h_idx < self.num_htracks:
            raise IndexError(
                f"h-track index {h_idx} out of range [0, {self.num_htracks - 1}]"
            )

    def coord_of(self, v_idx: int, h_idx: int) -> tuple[int, int]:
        """Geometric ``(x, y)`` of intersection ``(v_idx, h_idx)``."""
        self._check_indices(v_idx, h_idx)
        return self.vtracks[v_idx], self.htracks[h_idx]

    # ------------------------------------------------------------------
    # Per-net track footprints (width classes)
    # ------------------------------------------------------------------
    def set_net_footprint(self, net_id: int, span: int, guard: int = 0) -> None:
        """Declare that ``net_id`` claims a multi-track footprint.

        A wide net's wire covers ``span`` adjacent tracks (its base
        track plus ``span - 1`` above/right of it) and additionally
        keeps ``guard`` same-direction tracks clear on *each* side, per
        the technology's width-dependent spacing tables
        (:meth:`~repro.technology.Technology.net_footprint`).  Every
        occupy primitive and availability query on this grid expands
        the net's claims accordingly; the expansion clamps at grid
        edges, where the routing region itself bounds the wiring.

        ``(1, 0)`` is the historical single-track behaviour and is not
        stored, so grids carrying only signal nets run the exact
        pre-footprint code paths.
        """
        if span < 1 or guard < 0:
            raise ValueError("footprint needs span >= 1 and guard >= 0")
        if net_id < 1:
            raise ValueError("net ids must be >= 1")
        if span == 1 and guard == 0:
            self._footprints.pop(net_id, None)
        else:
            self._footprints[net_id] = (span, guard)

    def footprint_of(self, net_id: int) -> tuple[int, int]:
        """The ``(span, guard)`` footprint of ``net_id`` (default ``(1, 0)``)."""
        return self._footprints.get(net_id, (1, 0))

    def footprint_reach(self, net_id: int) -> int:
        """Tracks past the base track the net's claims can extend."""
        span, guard = self.footprint_of(net_id)
        return span - 1 + guard

    def max_footprint_reach(self) -> int:
        """Largest :meth:`footprint_reach` over all declared footprints."""
        if not self._footprints:
            return 0
        return max(s - 1 + g for s, g in self._footprints.values())

    @staticmethod
    def _expand_rows(base: int, fp: tuple[int, int], n: int) -> range:
        """Track rows a footprinted claim at ``base`` touches, clamped."""
        span, guard = fp
        return range(max(0, base - guard), min(n - 1, base + span - 1 + guard) + 1)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> GridTransaction:
        """Open a transaction (savepoint) over the undo journal."""
        txn = GridTransaction(self, len(self._journal))
        self._txns.append(txn)
        return txn

    @contextmanager
    def transaction(self) -> Iterator[GridTransaction]:
        """Context-managed transaction: commit on success, rollback on
        exception.  An explicit early ``commit()``/``rollback()`` inside
        the block is honoured."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if not txn.closed:
                txn.rollback()
            raise
        if not txn.closed:
            txn.commit()

    @property
    def in_transaction(self) -> bool:
        return bool(self._txns)

    @property
    def journal_len(self) -> int:
        """Undo-journal entries currently recorded.

        Entries exist only while a transaction is open (the outermost
        commit clears the journal, rollbacks pop their own entries), so
        a nonzero value with :attr:`in_transaction` false indicates a
        balance bug.  Exposed for the ``grid.journal`` audit rule in
        :mod:`repro.check`.
        """
        return len(self._journal)

    def _require_top(self, txn: GridTransaction) -> None:
        if txn.closed:
            raise RuntimeError("transaction already closed")
        if not self._txns or self._txns[-1] is not txn:
            raise RuntimeError(
                "transactions must close innermost-first (savepoint nesting)"
            )

    def _commit_txn(self, txn: GridTransaction) -> None:
        self._require_top(txn)
        self._txns.pop()
        txn.closed = True
        if not self._txns:
            # Outermost commit: the journal is no longer reachable.
            self._journal.clear()
        inst = instrument.active()
        if inst.enabled:
            inst.count(TXN_COMMITS)

    def _rollback_txn(self, txn: GridTransaction) -> int:
        self._require_top(txn)
        self._txns.pop()
        txn.closed = True
        undone = 0
        H, V = self._h_owner, self._v_owner
        while len(self._journal) > txn._savepoint:
            rec = self._journal.pop()
            tag = rec[0]
            if tag == "h":
                _, net_id, h_idx, v_lo, prior = rec
                H[h_idx, v_lo : v_lo + len(prior)] = prior
                undone += len(prior)
                self._ledger_pop(net_id)
            elif tag == "v":
                _, net_id, v_idx, h_lo, prior = rec
                V[v_idx, h_lo : h_lo + len(prior)] = prior
                undone += len(prior)
                self._ledger_pop(net_id)
            elif tag == "c":
                _, net_id, v_idx, h_idx, prior_h, prior_v, reserved = rec
                H[h_idx, v_idx] = prior_h
                V[v_idx, h_idx] = prior_v
                if reserved:
                    self._unrouted_terms[h_idx, v_idx] -= 1
                undone += 2
                self._ledger_pop(net_id)
            elif tag == "m":
                _, v_idx, h_idx = rec
                self._unrouted_terms[h_idx, v_idx] += 1
                undone += 1
            else:  # "rip": restore the net's wiring and its ledger
                _, net_id, ledger = rec
                undone += self._replay_ledger(net_id, ledger)
                self._net_ledger[net_id] = ledger
        inst = instrument.active()
        if inst.enabled:
            inst.count(TXN_ROLLBACKS)
            inst.count(TXN_UNDO_CELLS, undone)
        return undone

    def _ledger_pop(self, net_id: int) -> None:
        if net_id >= 1:
            self._net_ledger[net_id].pop()

    def _ledger_push(self, net_id: int, entry: tuple) -> None:
        if net_id >= 1:
            self._net_ledger.setdefault(net_id, []).append(entry)

    def _replay_ledger(self, net_id: int, ledger: Iterable[tuple]) -> int:
        """Re-claim every ledger cell for ``net_id`` (rip-up undo)."""
        H, V = self._h_owner, self._v_owner
        cells = 0
        for entry in ledger:
            tag = entry[0]
            if tag == _LEDGER_H:
                _, h_idx, v_lo, v_hi = entry
                H[h_idx, v_lo : v_hi + 1] = net_id
                cells += v_hi - v_lo + 1
            elif tag == _LEDGER_V:
                _, v_idx, h_lo, h_hi = entry
                V[v_idx, h_lo : h_hi + 1] = net_id
                cells += h_hi - h_lo + 1
            else:
                _, v_idx, h_idx = entry
                H[h_idx, v_idx] = net_id
                V[v_idx, h_idx] = net_id
                cells += 2
        return cells

    # ------------------------------------------------------------------
    # Snapshots (cheap immutable copies for exactness checks)
    # ------------------------------------------------------------------
    def snapshot(self) -> GridSnapshot:
        """An immutable copy of the full mutable state.

        Always dense numpy arrays, whatever the backend — which is what
        makes snapshots from different backends directly comparable
        (the backend-parity property tests digest these).
        """
        arrays = self.backend.dense_arrays()
        for arr in arrays:
            arr.setflags(write=False)
        return GridSnapshot(*arrays)

    def matches(self, snap: GridSnapshot) -> bool:
        """Is the grid byte-identical to ``snap``?"""
        return bool(
            np.array_equal(np.asarray(self._h_owner), snap.h_owner)
            and np.array_equal(np.asarray(self._v_owner), snap.v_owner)
            and np.array_equal(
                np.asarray(self._unrouted_terms), snap.unrouted_terms
            )
        )

    def window_snapshot(self, v_iv: Interval, h_iv: Interval) -> WindowSnapshot:
        """Copy the state of the index window ``v_iv`` x ``h_iv``.

        Intervals are clamped to the grid, so callers may pass padded
        boxes that run past an edge — clipping at the window boundary
        then coincides with clipping at the grid boundary, which is what
        keeps windowed cost-model reads exact near edges.  A window
        lying *entirely* off-grid is an upstream indexing bug and
        raises ``IndexError`` instead of clamping to a sliver.
        """
        if v_iv.hi < 0 or v_iv.lo >= self.num_vtracks:
            bad = v_iv.hi if v_iv.hi < 0 else v_iv.lo
            raise IndexError(
                f"v-track window index {bad} out of range "
                f"[0, {self.num_vtracks - 1}]"
            )
        if h_iv.hi < 0 or h_iv.lo >= self.num_htracks:
            bad = h_iv.hi if h_iv.hi < 0 else h_iv.lo
            raise IndexError(
                f"h-track window index {bad} out of range "
                f"[0, {self.num_htracks - 1}]"
            )
        v_iv = self.vtracks.clip_indices(v_iv)
        h_iv = self.htracks.clip_indices(h_iv)
        hs = slice(h_iv.lo, h_iv.hi + 1)
        vs = slice(v_iv.lo, v_iv.hi + 1)
        # np.array (not .copy()) so the copy works whether the backend's
        # slice read returned a dense view or an already-fresh gather.
        arrays = (
            np.array(self._h_owner[hs, vs]),
            np.array(self._v_owner[vs, hs]),
            np.array(self._unrouted_terms[hs, vs]),
        )
        for arr in arrays:
            arr.setflags(write=False)
        return WindowSnapshot(
            v_lo=v_iv.lo,
            h_lo=h_iv.lo,
            vcoords=tuple(self.vtracks.coords[vs]),
            hcoords=tuple(self.htracks.coords[hs]),
            h_owner=arrays[0],
            v_owner=arrays[1],
            unrouted_terms=arrays[2],
            global_vtracks=self.num_vtracks,
            global_htracks=self.num_htracks,
        )

    def window_matches(self, snap: WindowSnapshot) -> bool:
        """Is the grid byte-identical to ``snap`` over its window?

        The speculation-validity test: equality proves every cell a
        speculative search could have read still holds the value it saw,
        so the speculative result equals what a serial search would
        produce right now.

        A snapshot whose window does not lie inside this grid (it was
        cut from a different or larger grid) can never match and
        returns ``False`` outright — previously this case leaned on
        numpy's silent slice clamping to produce a shape mismatch,
        which not every backend store reproduces.
        """
        if (
            snap.v_lo < 0
            or snap.h_lo < 0
            or snap.v_lo + snap.num_vtracks > self.num_vtracks
            or snap.h_lo + snap.num_htracks > self.num_htracks
        ):
            return False
        hs = slice(snap.h_lo, snap.h_lo + snap.num_htracks)
        vs = slice(snap.v_lo, snap.v_lo + snap.num_vtracks)
        return bool(
            np.array_equal(self._h_owner[hs, vs], snap.h_owner)
            and np.array_equal(self._v_owner[vs, hs], snap.v_owner)
            and np.array_equal(self._unrouted_terms[hs, vs], snap.unrouted_terms)
        )

    # ------------------------------------------------------------------
    # Obstacles and terminals
    # ------------------------------------------------------------------
    def add_obstacle(
        self, rect: Rect, *, block_h: bool = True, block_v: bool = True
    ) -> int:
        """Block every intersection inside ``rect`` (coordinate space).

        Returns the number of intersections newly blocked.  Blocking a
        cell already owned by a net raises: obstacles must be declared
        before routing starts (which is also what keeps the per-net
        ledger's cells exclusively net-owned).
        """
        vr = self.vtracks.index_range(rect.x1, rect.x2)
        hr = self.htracks.index_range(rect.y1, rect.y2)
        if len(vr) == 0 or len(hr) == 0:
            return 0
        blocked = 0
        hs = slice(hr.start, hr.stop)
        vs = slice(vr.start, vr.stop)
        h_block = np.asarray(self._h_owner[hs, vs])
        v_block = np.asarray(self._v_owner[vs, hs])
        if block_h:
            if (h_block > 0).any():
                raise ValueError("obstacle overlaps routed wiring (h)")
            blocked += int((h_block != OBSTACLE).sum())
            self._h_owner[hs, vs] = OBSTACLE
        if block_v:
            if (v_block > 0).any():
                raise ValueError("obstacle overlaps routed wiring (v)")
            if not block_h:
                blocked += int((v_block != OBSTACLE).sum())
            self._v_owner[vs, hs] = OBSTACLE
        return blocked

    def reserve_terminal(self, v_idx: int, h_idx: int, net_id: int) -> None:
        """Claim an intersection for a net's terminal via stack.

        Terminal connections from level B nets down to m1/m2 happen
        only at terminal locations (paper section 2), so the stack
        blocks both directions for every other net from the outset.
        """
        if net_id < 1:
            raise ValueError("net ids must be >= 1")
        self._check_indices(v_idx, h_idx)
        prior_h = int(self._h_owner[h_idx, v_idx])
        prior_v = int(self._v_owner[v_idx, h_idx])
        for current in (prior_h, prior_v):
            if current not in (FREE, net_id):
                raise ValueError(
                    f"terminal at ({v_idx},{h_idx}) collides with owner {current}"
                )
        fp = self._footprints.get(net_id)
        extra: list[tuple[int, int]] = []
        if fp is not None:
            # A wide terminal's anchor covers the footprint block —
            # best-effort: terminal pins sit at fixed physical
            # positions the width model cannot move, so cells already
            # held by another net's stack are simply skipped.  Wire
            # claims reaching the terminal still pre-check the full
            # footprint, so the router routes around (or fails) such
            # pinched terminals instead of shorting.
            for v in self._expand_rows(v_idx, fp, self.num_vtracks):
                for h in self._expand_rows(h_idx, fp, self.num_htracks):
                    if (v, h) == (v_idx, h_idx):
                        continue
                    if self._h_owner[h, v] not in (FREE, net_id) or (
                        self._v_owner[v, h] not in (FREE, net_id)
                    ):
                        continue
                    extra.append((v, h))
        if self._txns:
            self._journal.append(
                ("c", net_id, v_idx, h_idx, prior_h, prior_v, True)
            )
        self._h_owner[h_idx, v_idx] = net_id
        self._v_owner[v_idx, h_idx] = net_id
        self._unrouted_terms[h_idx, v_idx] += 1
        self._ledger_push(net_id, (_LEDGER_C, v_idx, h_idx))
        for v, h in extra:
            if self._txns:
                self._journal.append(
                    (
                        "c", net_id, v, h,
                        int(self._h_owner[h, v]), int(self._v_owner[v, h]),
                        False,
                    )
                )
            self._h_owner[h, v] = net_id
            self._v_owner[v, h] = net_id
            self._ledger_push(net_id, (_LEDGER_C, v, h))

    def mark_terminal_routed(self, v_idx: int, h_idx: int) -> None:
        """Drop one unrouted-terminal mark at an intersection."""
        self._check_indices(v_idx, h_idx)
        if self._unrouted_terms[h_idx, v_idx] > 0:
            if self._txns:
                self._journal.append(("m", v_idx, h_idx))
            self._unrouted_terms[h_idx, v_idx] -= 1

    # ------------------------------------------------------------------
    # Availability queries
    # ------------------------------------------------------------------
    def corner_free(self, v_idx: int, h_idx: int, net_id: int) -> bool:
        """Can ``net_id`` place a corner/via at this intersection?"""
        self._check_indices(v_idx, h_idx)
        fp = self._footprints.get(net_id)
        if fp is None:
            h = self._h_owner[h_idx, v_idx]
            v = self._v_owner[v_idx, h_idx]
            return h in (FREE, net_id) and v in (FREE, net_id)
        for v in self._expand_rows(v_idx, fp, self.num_vtracks):
            for h in self._expand_rows(h_idx, fp, self.num_htracks):
                if self._h_owner[h, v] not in (FREE, net_id) or (
                    self._v_owner[v, h] not in (FREE, net_id)
                ):
                    return False
        return True

    def h_slot(self, v_idx: int, h_idx: int) -> int:
        self._check_indices(v_idx, h_idx)
        return int(self._h_owner[h_idx, v_idx])

    def v_slot(self, v_idx: int, h_idx: int) -> int:
        self._check_indices(v_idx, h_idx)
        return int(self._v_owner[v_idx, h_idx])

    def free_span_h(
        self, h_idx: int, v_idx: int, net_id: int, within: Interval | None = None
    ) -> Interval | None:
        """Maximal v-index interval around ``v_idx`` usable on h-track.

        A cell is usable when its horizontal slot is free or already
        owned by ``net_id``.  Returns ``None`` when the entry cell
        itself is unusable.  ``within`` clips the search window (the
        paper bounds each search to a rectangle around the terminals) —
        and is applied *before* the store is read, so a bounded search
        on a sparse backend never materialises a full track row.
        """
        lo = 0 if within is None else max(0, within.lo)
        hi = (
            self.num_vtracks - 1
            if within is None
            else min(self.num_vtracks - 1, within.hi)
        )
        if not lo <= v_idx <= hi:
            return None
        fp = self._footprints.get(net_id)
        if fp is None:
            win = self._h_owner[h_idx, lo : hi + 1]
            return _free_span(win, v_idx - lo, net_id, lo)
        usable = self._usable_mask_h(h_idx, lo, hi, net_id, fp)
        return _free_span_mask(usable, v_idx - lo, lo)

    def free_span_v(
        self, v_idx: int, h_idx: int, net_id: int, within: Interval | None = None
    ) -> Interval | None:
        """Maximal h-index interval around ``h_idx`` usable on v-track."""
        lo = 0 if within is None else max(0, within.lo)
        hi = (
            self.num_htracks - 1
            if within is None
            else min(self.num_htracks - 1, within.hi)
        )
        if not lo <= h_idx <= hi:
            return None
        fp = self._footprints.get(net_id)
        if fp is None:
            win = self._v_owner[v_idx, lo : hi + 1]
            return _free_span(win, h_idx - lo, net_id, lo)
        usable = self._usable_mask_v(v_idx, lo, hi, net_id, fp)
        return _free_span_mask(usable, h_idx - lo, lo)

    def _usable_mask_h(
        self, h_idx: int, lo: int, hi: int, net_id: int, fp: tuple[int, int]
    ) -> list[bool]:
        """Per-cell usability of an h-track window for a wide net.

        A cell is usable when the *whole footprint* anchored at
        ``h_idx`` — metal rows plus guard rows — is free (or the net's
        own) at that v-position, i.e. the AND across the expanded rows.
        """
        mask: np.ndarray | None = None
        for row in self._expand_rows(h_idx, fp, self.num_htracks):
            win = np.asarray(self._h_owner[row, lo : hi + 1])
            ok = (win == FREE) | (win == net_id)
            mask = ok if mask is None else (mask & ok)
        assert mask is not None
        return mask.tolist()

    def _usable_mask_v(
        self, v_idx: int, lo: int, hi: int, net_id: int, fp: tuple[int, int]
    ) -> list[bool]:
        mask: np.ndarray | None = None
        for row in self._expand_rows(v_idx, fp, self.num_vtracks):
            win = np.asarray(self._v_owner[row, lo : hi + 1])
            ok = (win == FREE) | (win == net_id)
            mask = ok if mask is None else (mask & ok)
        assert mask is not None
        return mask.tolist()

    def corner_candidates_on_v(
        self, v_idx: int, h_lo: int, h_hi: int, net_id: int
    ) -> list[int]:
        """h-indices in ``[h_lo, h_hi]`` where ``net_id`` may corner.

        Batched form of :meth:`corner_free` along a vertical track -
        the level B search's hot path.  Spans here are typically a few
        dozen cells, where a plain-Python scan over ``tolist()`` beats
        numpy's fixed per-op overhead by several times.
        """
        fp = self._footprints.get(net_id)
        if fp is not None:
            return [
                h_idx
                for h_idx in range(h_lo, h_hi + 1)
                if self.corner_free(v_idx, h_idx, net_id)
            ]
        h = self._h_owner[h_lo : h_hi + 1, v_idx].tolist()
        v = self._v_owner[v_idx, h_lo : h_hi + 1].tolist()
        allowed = (FREE, net_id)
        return [
            h_lo + i
            for i, (hs, vs) in enumerate(zip(h, v))
            if hs in allowed and vs in allowed
        ]

    def corner_candidates_on_h(
        self, h_idx: int, v_lo: int, v_hi: int, net_id: int
    ) -> list[int]:
        """v-indices in ``[v_lo, v_hi]`` where ``net_id`` may corner."""
        fp = self._footprints.get(net_id)
        if fp is not None:
            return [
                v_idx
                for v_idx in range(v_lo, v_hi + 1)
                if self.corner_free(v_idx, h_idx, net_id)
            ]
        h = self._h_owner[h_idx, v_lo : v_hi + 1].tolist()
        v = self._v_owner[v_lo : v_hi + 1, h_idx].tolist()
        allowed = (FREE, net_id)
        return [
            v_lo + i
            for i, (hs, vs) in enumerate(zip(h, v))
            if hs in allowed and vs in allowed
        ]

    def span_usable_h(
        self, h_idx: int, v_lo: int, v_hi: int, net_id: int
    ) -> bool:
        """Is the whole h-track span ``[v_lo, v_hi]`` usable by the net?"""
        if v_lo > v_hi:
            v_lo, v_hi = v_hi, v_lo
        fp = self._footprints.get(net_id)
        if fp is not None:
            return all(self._usable_mask_h(h_idx, v_lo, v_hi, net_id, fp))
        row = self._h_owner[h_idx, v_lo : v_hi + 1]
        return bool(((row == FREE) | (row == net_id)).all())

    def span_usable_v(
        self, v_idx: int, h_lo: int, h_hi: int, net_id: int
    ) -> bool:
        if h_lo > h_hi:
            h_lo, h_hi = h_hi, h_lo
        fp = self._footprints.get(net_id)
        if fp is not None:
            return all(self._usable_mask_v(v_idx, h_lo, h_hi, net_id, fp))
        row = self._v_owner[v_idx, h_lo : h_hi + 1]
        return bool(((row == FREE) | (row == net_id)).all())

    # ------------------------------------------------------------------
    # Mutation (the O(t)-per-segment update of section 3.4)
    # ------------------------------------------------------------------
    def occupy_h(self, h_idx: int, v_lo: int, v_hi: int, net_id: int) -> None:
        """Claim the horizontal slots of a span for ``net_id``.

        A net with a declared footprint claims every expanded row
        (metal span plus guards) — each row gets its own journal and
        ledger entry, so rollback and rip-up replay work unchanged.
        """
        if v_lo > v_hi:
            v_lo, v_hi = v_hi, v_lo
        fp = self._footprints.get(net_id)
        if fp is None:
            rows: Sequence[int] = (h_idx,)
        else:
            rows = self._expand_rows(h_idx, fp, self.num_htracks)
        priors = []
        for r in rows:
            row = np.asarray(self._h_owner[r, v_lo : v_hi + 1])
            foreign = (row != FREE) & (row != net_id)
            if foreign.any():
                raise ValueError(
                    f"h-track {r} span [{v_lo},{v_hi}] not free for net {net_id}"
                )
            priors.append(row)
        for r, row in zip(rows, priors):
            if self._txns:
                self._journal.append(("h", net_id, r, v_lo, row.copy()))
            self._h_owner[r, v_lo : v_hi + 1] = net_id
            self._ledger_push(net_id, (_LEDGER_H, r, v_lo, v_hi))

    def occupy_v(self, v_idx: int, h_lo: int, h_hi: int, net_id: int) -> None:
        """Claim the vertical slots of a span for ``net_id``."""
        if h_lo > h_hi:
            h_lo, h_hi = h_hi, h_lo
        fp = self._footprints.get(net_id)
        if fp is None:
            rows: Sequence[int] = (v_idx,)
        else:
            rows = self._expand_rows(v_idx, fp, self.num_vtracks)
        priors = []
        for r in rows:
            row = np.asarray(self._v_owner[r, h_lo : h_hi + 1])
            foreign = (row != FREE) & (row != net_id)
            if foreign.any():
                raise ValueError(
                    f"v-track {r} span [{h_lo},{h_hi}] not free for net {net_id}"
                )
            priors.append(row)
        for r, row in zip(rows, priors):
            if self._txns:
                self._journal.append(("v", net_id, r, h_lo, row.copy()))
            self._v_owner[r, h_lo : h_hi + 1] = net_id
            self._ledger_push(net_id, (_LEDGER_V, r, h_lo, h_hi))

    def occupy_corner(self, v_idx: int, h_idx: int, net_id: int) -> None:
        """Claim both slots at an intersection (an m3-m4 via).

        A footprinted net's corner via pad covers the whole expanded
        block (span plus guard ring on both axes); every cell is
        claimed with its own journal/ledger entry.
        """
        if not self.corner_free(v_idx, h_idx, net_id):
            raise ValueError(f"corner ({v_idx},{h_idx}) not free for net {net_id}")
        fp = self._footprints.get(net_id)
        if fp is None:
            cells = ((v_idx, h_idx),)
        else:
            cells = tuple(
                (v, h)
                for v in self._expand_rows(v_idx, fp, self.num_vtracks)
                for h in self._expand_rows(h_idx, fp, self.num_htracks)
            )
        for v, h in cells:
            if self._txns:
                self._journal.append(
                    (
                        "c",
                        net_id,
                        v,
                        h,
                        int(self._h_owner[h, v]),
                        int(self._v_owner[v, h]),
                        False,
                    )
                )
            self._h_owner[h, v] = net_id
            self._v_owner[v, h] = net_id
            self._ledger_push(net_id, (_LEDGER_C, v, h))

    def commit_path(
        self,
        net_id: int,
        points: Sequence,
        corners: Iterable[tuple[int, int]],
    ) -> int:
        """Claim a path (waypoint sequence plus corner vias) for ``net_id``.

        The shared commit primitive behind every connection engine, so
        all of them mutate the occupancy array identically.  Waypoint
        coordinates must lie on tracks; consecutive points must be
        axis-aligned.  Returns the number of slots claimed.
        """
        cells = 0
        for a, b in zip(points, points[1:]):
            if a == b:
                continue
            if a.y == b.y:
                h_idx = self.htracks.index_of(a.y)
                idxs = self.vtracks.index_range(min(a.x, b.x), max(a.x, b.x))
                self.occupy_h(h_idx, idxs.start, idxs.stop - 1, net_id)
            else:
                v_idx = self.vtracks.index_of(a.x)
                idxs = self.htracks.index_range(min(a.y, b.y), max(a.y, b.y))
                self.occupy_v(v_idx, idxs.start, idxs.stop - 1, net_id)
            cells += idxs.stop - idxs.start
        for v_idx, h_idx in corners:
            self.occupy_corner(v_idx, h_idx, net_id)
            cells += 1
        instrument.count(OCC_CELLS_TOUCHED, cells)
        return cells

    def rip_net(self, net_id: int) -> int:
        """Remove every slot owned by ``net_id`` (rip-up).

        Replays the net's mutation ledger, so the cost is
        ``O(cells the net touches)`` - the occupancy arrays are never
        scanned.  Returns the number of slots freed.  The caller is
        responsible for re-reserving the net's terminals afterwards.
        Inside a transaction the rip is journaled and fully undone by
        ``rollback()`` (wiring *and* ledger restored).
        """
        if net_id < 1:
            raise ValueError("net ids must be >= 1")
        ledger = self._net_ledger.pop(net_id, None)
        if not ledger:
            return 0
        freed = 0
        H, V = self._h_owner, self._v_owner
        for entry in ledger:
            tag = entry[0]
            if tag == _LEDGER_H:
                _, h_idx, v_lo, v_hi = entry
                row = np.array(H[h_idx, v_lo : v_hi + 1])
                mask = row == net_id  # overlap-safe: count each slot once
                hits = int(mask.sum())
                if hits:
                    freed += hits
                    row[mask] = FREE
                    H[h_idx, v_lo : v_hi + 1] = row
            elif tag == _LEDGER_V:
                _, v_idx, h_lo, h_hi = entry
                row = np.array(V[v_idx, h_lo : h_hi + 1])
                mask = row == net_id
                hits = int(mask.sum())
                if hits:
                    freed += hits
                    row[mask] = FREE
                    V[v_idx, h_lo : h_hi + 1] = row
            else:
                _, v_idx, h_idx = entry
                if H[h_idx, v_idx] == net_id:
                    H[h_idx, v_idx] = FREE
                    freed += 1
                if V[v_idx, h_idx] == net_id:
                    V[v_idx, h_idx] = FREE
                    freed += 1
        if self._txns:
            self._journal.append(("rip", net_id, ledger))
        return freed

    def clear_net(self, net_id: int) -> int:
        """Backwards-compatible alias for :meth:`rip_net`."""
        return self.rip_net(net_id)

    def ledgered_net_ids(self) -> list[int]:
        """Net ids with a non-empty mutation ledger, sorted."""
        return sorted(i for i, entries in self._net_ledger.items() if entries)

    def ledger_entries(self, net_id: int) -> tuple[tuple, ...]:
        """A read-only copy of a net's mutation ledger.

        Entries are ``("h", h_idx, v_lo, v_hi)`` for horizontal spans,
        ``("v", v_idx, h_lo, h_hi)`` for vertical spans and
        ``("c", v_idx, h_idx)`` for both-slot claims (corner vias and
        terminal stacks), in commit order.  The ``grid.ledger`` audit in
        :mod:`repro.check` replays these against the occupancy arrays.
        """
        return tuple(self._net_ledger.get(net_id, ()))

    def net_cells_recorded(self, net_id: int) -> int:
        """Slots recorded in a net's ledger (overlaps counted twice).

        An upper bound on what :meth:`rip_net` will free; exposed for
        tests and benchmarks asserting the O(cells) rip-up contract.
        """
        cells = 0
        for entry in self._net_ledger.get(net_id, ()):
            tag = entry[0]
            if tag == _LEDGER_C:
                cells += 2
            else:
                cells += entry[3] - entry[2] + 1
        return cells

    def owners_near(self, v_idx: int, h_idx: int, radius: int) -> list[int]:
        """Net ids wired within ``radius`` tracks of an intersection."""
        hw, vw = self._window(v_idx, h_idx, radius)
        h = self._h_owner[hw, vw]
        v = self._v_owner[vw, hw]
        ids = set(np.unique(h)) | set(np.unique(v))
        return sorted(int(i) for i in ids if i > 0)

    # ------------------------------------------------------------------
    # Cost-model statistics (drg / dup / acf inputs)
    # ------------------------------------------------------------------
    def routed_density_near(self, v_idx: int, h_idx: int, radius: int) -> float:
        """Fraction of slots near an intersection used by routed nets.

        Input to the ``drg`` term: corners close to existing wiring are
        penalised.
        """
        hw, vw = self._window(v_idx, h_idx, radius)
        h = self._h_owner[hw, vw]
        v = self._v_owner[vw, hw].T
        used = (h > 0).sum() + (v > 0).sum()
        return float(used) / float(2 * h.size)

    def unrouted_terminals_near(self, v_idx: int, h_idx: int, radius: int) -> int:
        """Count of unrouted terminals near an intersection (``dup``)."""
        hw, vw = self._window(v_idx, h_idx, radius)
        return int(self._unrouted_terms[hw, vw].sum())

    def congestion_near(self, v_idx: int, h_idx: int, radius: int) -> float:
        """Fraction of *unusable* slots (routed or obstacle) nearby.

        Input to the area congestion factor ``acf``.
        """
        hw, vw = self._window(v_idx, h_idx, radius)
        h = self._h_owner[hw, vw]
        v = self._v_owner[vw, hw].T
        busy = (h != FREE).sum() + (v != FREE).sum()
        return float(busy) / float(2 * h.size)

    def _window(self, v_idx: int, h_idx: int, radius: int) -> tuple[slice, slice]:
        h_lo = max(0, h_idx - radius)
        h_hi = min(self.num_htracks - 1, h_idx + radius)
        v_lo = max(0, v_idx - radius)
        v_hi = min(self.num_vtracks - 1, v_idx + radius)
        return slice(h_lo, h_hi + 1), slice(v_lo, v_hi + 1)

    # ------------------------------------------------------------------
    # Whole-grid statistics
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of all slots carrying routed wiring."""
        return self.backend.used_slots() / float(2 * self.num_intersections)

    def owners(self) -> list[int]:
        """Sorted list of net ids present anywhere on the grid."""
        return sorted(self.backend.owner_ids())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutingGrid({self.num_vtracks}x{self.num_htracks} tracks, "
            f"{self.utilization():.1%} used)"
        )


def _free_span(
    window: np.ndarray, pos: int, net_id: int, offset: int
) -> Interval | None:
    """Maximal usable index interval around position ``pos`` of a
    pre-clipped slot window starting at global index ``offset``.

    Implemented as an outward scan over ``tolist()``: search windows
    are small (a terminal bounding box plus margin), so this beats
    numpy's per-op overhead on the hot path.
    """
    win = window.tolist()
    allowed = (FREE, net_id)
    if win[pos] not in allowed:
        return None
    lo = pos
    while lo > 0 and win[lo - 1] in allowed:
        lo -= 1
    hi = pos
    last = len(win) - 1
    while hi < last and win[hi + 1] in allowed:
        hi += 1
    return Interval(lo + offset, hi + offset)


def _free_span_mask(
    usable: list[bool], pos: int, offset: int
) -> Interval | None:
    """:func:`_free_span` over a precomputed per-cell usability mask.

    The footprint-aware variant: the caller ANDs usability across the
    net's expanded rows, this scans outward from ``pos`` exactly like
    the single-row case.
    """
    if not usable[pos]:
        return None
    lo = pos
    while lo > 0 and usable[lo - 1]:
        lo -= 1
    hi = pos
    last = len(usable) - 1
    while hi < last and usable[hi + 1]:
        hi += 1
    return Interval(lo + offset, hi + offset)
