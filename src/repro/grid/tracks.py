"""Sorted track coordinate sets with coordinate/index mapping."""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator, Sequence

from repro.geometry import Interval


class TrackSet:
    """An ordered set of routing-track coordinates.

    The paper's grid model allows tracks with different spacing: the
    over-cell grid is a uniform lattice at the m3/m4 pitch *plus* one
    track through every terminal so that each net terminal can be
    assigned "a pair of horizontal and vertical tracks" (section 3).
    """

    __slots__ = ("_coords", "_index")

    def __init__(self, coords: Iterable[int]) -> None:
        self._coords: list[int] = sorted({int(c) for c in coords})
        if not self._coords:
            raise ValueError("TrackSet needs at least one track")
        self._index: dict[int, int] = {c: i for i, c in enumerate(self._coords)}

    @staticmethod
    def uniform(lo: int, hi: int, pitch: int, extra: Iterable[int] = ()) -> "TrackSet":
        """Tracks every ``pitch`` units across ``[lo, hi]`` plus ``extra``.

        Extra coordinates outside ``[lo, hi]`` are rejected: a terminal
        off the routing area indicates an upstream bug.
        """
        if pitch <= 0:
            raise ValueError("pitch must be positive")
        if lo > hi:
            raise ValueError(f"empty track range [{lo},{hi}]")
        coords = list(range(lo, hi + 1, pitch))
        if coords[-1] != hi:
            coords.append(hi)
        for c in extra:
            if not lo <= c <= hi:
                raise ValueError(f"extra track {c} outside [{lo},{hi}]")
            coords.append(c)
        return TrackSet(coords)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._coords)

    def __iter__(self) -> Iterator[int]:
        return iter(self._coords)

    def __getitem__(self, index: int) -> int:
        return self._coords[index]

    @property
    def coords(self) -> Sequence[int]:
        return self._coords

    @property
    def span(self) -> Interval:
        return Interval(self._coords[0], self._coords[-1])

    def index_of(self, coord: int) -> int:
        """Exact index of a track coordinate (raises when absent)."""
        try:
            return self._index[coord]
        except KeyError:
            raise KeyError(f"no track at coordinate {coord}") from None

    def has(self, coord: int) -> bool:
        return coord in self._index

    def nearest_index(self, coord: int) -> int:
        """Index of the track closest to ``coord`` (ties go low)."""
        pos = bisect.bisect_left(self._coords, coord)
        if pos == 0:
            return 0
        if pos == len(self._coords):
            return len(self._coords) - 1
        before, after = self._coords[pos - 1], self._coords[pos]
        return pos if (after - coord) < (coord - before) else pos - 1

    def index_range(self, lo_coord: int, hi_coord: int) -> range:
        """Indices of all tracks with coordinates in ``[lo, hi]``."""
        lo = bisect.bisect_left(self._coords, lo_coord)
        hi = bisect.bisect_right(self._coords, hi_coord)
        return range(lo, hi)

    def clip_indices(self, iv: Interval) -> Interval:
        """Clamp an index interval to valid indices."""
        return Interval(max(0, iv.lo), min(len(self._coords) - 1, iv.hi))

    def distance(self, i: int, j: int) -> int:
        """Geometric distance between tracks ``i`` and ``j``."""
        return abs(self._coords[i] - self._coords[j])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrackSet({len(self)} tracks {self._coords[0]}..{self._coords[-1]})"
