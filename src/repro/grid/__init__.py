"""Routing tracks and the ``O(h*v)`` occupancy model.

The level B router works on a grid of horizontal and vertical routing
tracks with (possibly) non-uniform spacing (paper section 3).  This
package provides:

:class:`TrackSet`
    A sorted set of track coordinates with coordinate/index mapping.
:class:`RoutingGrid`
    The pair of track sets plus the two-dimensional occupancy array the
    paper describes: per intersection, separate horizontal-direction and
    vertical-direction ownership (reserved-layer model: metal4 carries
    horizontal, metal3 vertical), obstacle flags, and the auxiliary
    unrouted-terminal map the cost function's ``dup`` term reads.
:class:`GridTransaction` / :class:`GridSnapshot`
    The transactional state layer: a journal of undo records covering
    every grid mutation, giving rollback and per-net rip-up in
    O(cells touched), plus immutable snapshots for exactness checks.
:class:`WindowSnapshot`
    A rectangular sub-window copy of the grid state, the unit of work
    shipped to speculative routing workers (``repro.dispatch``).
:class:`PlaneSet`
    N routing grids (one per over-cell reserved-layer plane) sharing
    the same track coordinate sets, with aggregate transactions and
    snapshots.  Plane 0 is the paper's metal3/metal4 grid.
:class:`OccupancyBackend`
    Registry-selected storage engines behind :class:`RoutingGrid`:
    ``"dense"`` (contiguous numpy arrays) and ``"sparse"``
    (:class:`PagedArray` first-touch chunks, memory proportional to
    committed geometry — docs/SCALING.md).
"""

from repro.grid.tracks import TrackSet
from repro.grid.backend import (
    DenseBackend,
    OccupancyBackend,
    PagedArray,
    SparseBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.grid.occupancy import (
    FREE,
    OBSTACLE,
    GridSnapshot,
    GridTransaction,
    RoutingGrid,
    WindowSnapshot,
)
from repro.grid.planes import PlaneSet, PlaneSetTransaction

__all__ = [
    "TrackSet",
    "RoutingGrid",
    "FREE",
    "OBSTACLE",
    "GridSnapshot",
    "GridTransaction",
    "PlaneSet",
    "PlaneSetTransaction",
    "WindowSnapshot",
    "OccupancyBackend",
    "DenseBackend",
    "SparseBackend",
    "PagedArray",
    "available_backends",
    "get_backend",
    "register_backend",
]
