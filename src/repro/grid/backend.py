"""Pluggable storage backends for the occupancy grid.

The paper stores the TIG state in dense two-dimensional arrays — an
``O(h*v)`` footprint that caps design size long before the machine runs
out of compute.  This module abstracts *where those arrays live* behind
the :class:`OccupancyBackend` protocol, registry-selected by name
exactly like the connection engines (:mod:`repro.core.engine`):

``"dense"`` (:class:`DenseBackend`)
    The historical representation: three contiguous numpy arrays.
    Fastest per access; memory proportional to grid *area*.
``"sparse"`` (:class:`SparseBackend`)
    :class:`PagedArray` stores — per-row dicts of fixed-size column
    chunks, allocated on first touch.  Memory proportional to
    *committed geometry*, so a mostly-empty scale-tier grid costs a
    small fraction of its dense footprint (docs/SCALING.md).

:class:`RoutingGrid` routes every read and write through the backend's
three stores (``h_owner``, ``v_owner``, ``unrouted_terms``), and both
backends expose the same numpy-flavoured indexing over them, so
transactions, ledgers, snapshots and window exports behave identically
— the parity is pinned by sha256 route digests on every suite and a
hypothesis interleaving property (tests/test_backend.py).

Backends also account for themselves: :meth:`~OccupancyBackend.
memory_bytes` is the bytes actually allocated, :meth:`~OccupancyBackend.
dense_equiv_bytes` what a dense representation of the same grid would
cost — the pair behind the ``mem.*`` gauges and ``BENCH_scale.json``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "OccupancyBackend",
    "DenseBackend",
    "SparseBackend",
    "PagedArray",
    "available_backends",
    "get_backend",
    "register_backend",
]

#: Cells per :class:`PagedArray` chunk.  Small enough that an isolated
#: touch (a terminal reservation, a short stub) costs tens of bytes,
#: large enough that a typical committed track span (tens of cells)
#: still lands on one or two pages.
PAGE_CELLS = 16


# ----------------------------------------------------------------------
# PagedArray: the sparse 2-D store
# ----------------------------------------------------------------------
class PagedArray:
    """A 2-D integer array stored as per-row chunks, zero until touched.

    Supports the indexing subset the routing stack uses on its
    ownership arrays — scalar cells, row/column slices and rectangular
    windows, with integer and slice keys in either axis — plus the
    numpy protocol (``__array__``, elementwise comparisons) so analysis
    code written against ndarrays keeps working.  Reads of untouched
    cells return zeros without allocating; writes of zeros into
    untouched pages are dropped, so clearing is as cheap as it is on a
    dense array.

    Not a general ndarray: steps other than 1 and fancy indexing are
    rejected, and slice reads return materialised (dense) copies, never
    views — callers mutate through ``__setitem__`` (which is how
    :class:`~repro.grid.occupancy.RoutingGrid` writes in any backend).
    """

    __slots__ = ("shape", "dtype", "_page", "_rows")

    def __init__(
        self,
        shape: tuple[int, int],
        dtype: np.dtype | type = np.int32,
        page: int = PAGE_CELLS,
    ) -> None:
        nrows, ncols = int(shape[0]), int(shape[1])
        if nrows < 0 or ncols < 0:
            raise ValueError(f"bad PagedArray shape {shape!r}")
        if page < 1:
            raise ValueError("page size must be >= 1")
        self.shape = (nrows, ncols)
        self.dtype = np.dtype(dtype)
        self._page = page
        #: row index -> {page index -> chunk ndarray of ``page`` cells}
        self._rows: dict[int, dict[int, np.ndarray]] = {}

    # -- shape / accounting --------------------------------------------
    @property
    def size(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def nbytes_allocated(self) -> int:
        """Bytes held by materialised pages (dict overhead excluded)."""
        per_page = self._page * self.dtype.itemsize
        return sum(len(pages) * per_page for pages in self._rows.values())

    @property
    def pages_allocated(self) -> int:
        return sum(len(pages) for pages in self._rows.values())

    # -- key normalisation ---------------------------------------------
    def _norm_index(self, idx: int, n: int, axis: str) -> int:
        idx = int(idx)
        if idx < 0:
            idx += n
        if not 0 <= idx < n:
            raise IndexError(f"{axis} index {idx} out of range [0, {n - 1}]")
        return idx

    def _norm_slice(self, sl: slice, n: int) -> tuple[int, int]:
        start, stop, step = sl.indices(n)
        if step != 1:
            raise IndexError("PagedArray supports step-1 slices only")
        return start, max(start, stop)

    def _key(self, key: int | slice | tuple) -> tuple[object, object]:
        if isinstance(key, tuple):
            if len(key) != 2:
                raise IndexError("PagedArray takes at most two indices")
            return key
        return key, slice(None)

    # -- reads ----------------------------------------------------------
    def __getitem__(self, key: int | slice | tuple) -> np.ndarray | int:
        rows, cols = self._key(key)
        nrows, ncols = self.shape
        if isinstance(rows, slice):
            r0, r1 = self._norm_slice(rows, nrows)
            if isinstance(cols, slice):
                c0, c1 = self._norm_slice(cols, ncols)
                out = np.zeros((r1 - r0, c1 - c0), dtype=self.dtype)
                for r in range(r0, r1):
                    self._read_row(r, c0, c1, out[r - r0])
                return out
            c = self._norm_index(cols, ncols, "column")
            out = np.zeros(r1 - r0, dtype=self.dtype)
            page, off = divmod(c, self._page)
            for r in range(r0, r1):
                chunk = self._rows.get(r, {}).get(page)
                if chunk is not None:
                    out[r - r0] = chunk[off]
            return out
        r = self._norm_index(rows, nrows, "row")
        if isinstance(cols, slice):
            c0, c1 = self._norm_slice(cols, ncols)
            out = np.zeros(c1 - c0, dtype=self.dtype)
            self._read_row(r, c0, c1, out)
            return out
        c = self._norm_index(cols, ncols, "column")
        chunk = self._rows.get(r, {}).get(c // self._page)
        if chunk is None:
            return int(0)
        return int(chunk[c % self._page])

    def _read_row(self, r: int, c0: int, c1: int, out: np.ndarray) -> None:
        """Fill ``out`` with columns ``[c0, c1)`` of row ``r``."""
        pages = self._rows.get(r)
        if not pages or c0 >= c1:
            return
        page = self._page
        for p in range(c0 // page, (c1 - 1) // page + 1):
            chunk = pages.get(p)
            if chunk is None:
                continue
            lo = max(c0, p * page)
            hi = min(c1, (p + 1) * page)
            out[lo - c0 : hi - c0] = chunk[lo - p * page : hi - p * page]

    # -- writes ---------------------------------------------------------
    def __setitem__(self, key: int | slice | tuple, value: Any) -> None:
        rows, cols = self._key(key)
        nrows, ncols = self.shape
        if isinstance(rows, slice):
            r0, r1 = self._norm_slice(rows, nrows)
            row_range = range(r0, r1)
        else:
            r = self._norm_index(rows, nrows, "row")
            row_range = range(r, r + 1)
        if isinstance(cols, slice):
            c0, c1 = self._norm_slice(cols, ncols)
        else:
            c = self._norm_index(cols, ncols, "column")
            c0, c1 = c, c + 1
        if c0 >= c1 or len(row_range) == 0:
            return
        value = np.asarray(value, dtype=self.dtype)
        if value.ndim > 2:
            raise ValueError("PagedArray assignment needs <= 2 dimensions")
        if value.ndim == 2:
            if value.shape != (len(row_range), c1 - c0):
                raise ValueError(
                    f"cannot assign shape {value.shape} to window "
                    f"({len(row_range)}, {c1 - c0})"
                )
            for i, r in enumerate(row_range):
                self._write_row(r, c0, c1, value[i])
        else:
            for r in row_range:
                self._write_row(r, c0, c1, value)

    def _write_row(self, r: int, c0: int, c1: int, value: np.ndarray) -> None:
        """Assign ``value`` (scalar or 1-D) to columns ``[c0, c1)``."""
        scalar = value.ndim == 0
        if not scalar and value.shape[0] != c1 - c0:
            raise ValueError(
                f"cannot assign length {value.shape[0]} to span {c1 - c0}"
            )
        pages = self._rows.get(r)
        page = self._page
        for p in range(c0 // page, (c1 - 1) // page + 1):
            lo = max(c0, p * page)
            hi = min(c1, (p + 1) * page)
            seg = value if scalar else value[lo - c0 : hi - c0]
            chunk = pages.get(p) if pages else None
            if chunk is None:
                # First touch: writing zeros into an untouched page is
                # a no-op, which is what keeps memory proportional to
                # committed geometry.
                if not seg.any():
                    continue
                chunk = np.zeros(page, dtype=self.dtype)
                if pages is None:
                    pages = self._rows.setdefault(r, {})
                pages[p] = chunk
            chunk[lo - p * page : hi - p * page] = seg

    # -- numpy interop ---------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """A dense materialisation (always a fresh array)."""
        out = np.zeros(self.shape, dtype=self.dtype)
        for r, pages in self._rows.items():
            self._read_row(r, 0, self.shape[1], out[r])
        return out

    def __array__(
        self, dtype: Any = None, copy: bool | None = None
    ) -> np.ndarray:
        dense = self.to_numpy()
        return dense if dtype is None else dense.astype(dtype)

    def __eq__(self, other: object) -> np.ndarray:  # type: ignore[override]
        return self.to_numpy() == other

    def __ne__(self, other: object) -> np.ndarray:  # type: ignore[override]
        return self.to_numpy() != other

    __hash__ = None  # type: ignore[assignment]  # array-like, mirrors ndarray

    def __gt__(self, other: object) -> np.ndarray:
        return self.to_numpy() > other

    def __lt__(self, other: object) -> np.ndarray:
        return self.to_numpy() < other

    # -- sparse-aware scans ----------------------------------------------
    def count_positive(self) -> int:
        """Number of cells holding a value > 0 (no densification)."""
        total = 0
        for pages in self._rows.values():
            for chunk in pages.values():
                total += int((chunk > 0).sum())
        return total

    def positive_values(self) -> set[int]:
        """Distinct values > 0 present anywhere (no densification)."""
        values: set[int] = set()
        for pages in self._rows.values():
            for chunk in pages.values():
                values.update(int(v) for v in np.unique(chunk) if v > 0)
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PagedArray({self.shape[0]}x{self.shape[1]} {self.dtype.name}, "
            f"{self.pages_allocated} pages)"
        )


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------
class OccupancyBackend:
    """Storage engine behind one :class:`~repro.grid.RoutingGrid`.

    A backend owns the grid's three mutable stores, all supporting the
    numpy indexing subset :class:`PagedArray` documents:

    ``h_owner``
        Horizontal-slot ownership, indexed ``[h_track][v_track]``
        (int32: 0 free, -1 obstacle, >= 1 net id).
    ``v_owner``
        Vertical-slot ownership, indexed ``[v_track][h_track]``.
    ``unrouted_terms``
        The unrouted-terminal density map, indexed like ``h_owner``
        (int16).

    Everything else — transactions, ledgers, journaling, windows — is
    :class:`RoutingGrid` logic layered on these stores, which is what
    keeps the backends behaviourally interchangeable.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    def __init__(self, num_htracks: int, num_vtracks: int) -> None:
        self.num_htracks = num_htracks
        self.num_vtracks = num_vtracks
        self.h_owner = self._make((num_htracks, num_vtracks), np.int32)
        self.v_owner = self._make((num_vtracks, num_htracks), np.int32)
        self.unrouted_terms = self._make((num_htracks, num_vtracks), np.int16)

    def _make(
        self, shape: tuple[int, int], dtype: type[np.generic]
    ) -> object:
        raise NotImplementedError

    # -- accounting ------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes the three stores actually hold right now."""
        raise NotImplementedError

    def dense_equiv_bytes(self) -> int:
        """What dense arrays of this grid's shape would always cost.

        The denominator of the sparse backend's memory win
        (``mem.grid_dense_equiv_bytes`` / ``BENCH_scale.json``).
        """
        cells = self.num_htracks * self.num_vtracks
        return cells * (
            np.dtype(np.int32).itemsize * 2 + np.dtype(np.int16).itemsize
        )

    # -- whole-grid scans ------------------------------------------------
    def used_slots(self) -> int:
        """Cells across both owner stores carrying a net id (> 0)."""
        raise NotImplementedError

    def owner_ids(self) -> set[int]:
        """Distinct net ids present in either owner store."""
        raise NotImplementedError

    def dense_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fresh dense copies of (h_owner, v_owner, unrouted_terms).

        The substrate of :meth:`RoutingGrid.snapshot`, so snapshots from
        any backend compare byte-for-byte.
        """
        raise NotImplementedError


_REGISTRY: dict[str, type[OccupancyBackend]] = {}


def register_backend(cls: type[OccupancyBackend]) -> type[OccupancyBackend]:
    """Class decorator: add an :class:`OccupancyBackend` to the registry."""
    if not cls.name:
        raise ValueError(f"backend class {cls.__name__} must set a name")
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> list[str]:
    """Names resolvable by :func:`get_backend`."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> type[OccupancyBackend]:
    """Resolve a backend class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown occupancy backend {name!r}; "
            f"available: {available_backends()}"
        ) from None


# ----------------------------------------------------------------------
# Implementations
# ----------------------------------------------------------------------
@register_backend
class DenseBackend(OccupancyBackend):
    """Contiguous numpy arrays — the paper's representation."""

    name = "dense"

    h_owner: np.ndarray
    v_owner: np.ndarray
    unrouted_terms: np.ndarray

    def _make(
        self, shape: tuple[int, int], dtype: type[np.generic]
    ) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def memory_bytes(self) -> int:
        return (
            self.h_owner.nbytes
            + self.v_owner.nbytes
            + self.unrouted_terms.nbytes
        )

    def used_slots(self) -> int:
        return int((self.h_owner > 0).sum()) + int((self.v_owner > 0).sum())

    def owner_ids(self) -> set[int]:
        ids = set(np.unique(self.h_owner)) | set(np.unique(self.v_owner))
        return {int(i) for i in ids if i > 0}

    def dense_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            self.h_owner.copy(),
            self.v_owner.copy(),
            self.unrouted_terms.copy(),
        )


@register_backend
class SparseBackend(OccupancyBackend):
    """Paged track chunks, allocated on first touch.

    Memory is proportional to committed geometry: an untouched region
    of the grid costs nothing until a wire, terminal or obstacle lands
    on it.  Chunk size is :data:`PAGE_CELLS` cells along the fast
    (track) axis.
    """

    name = "sparse"

    h_owner: PagedArray
    v_owner: PagedArray
    unrouted_terms: PagedArray

    def _make(
        self, shape: tuple[int, int], dtype: type[np.generic]
    ) -> PagedArray:
        return PagedArray(shape, dtype)

    def memory_bytes(self) -> int:
        return (
            self.h_owner.nbytes_allocated
            + self.v_owner.nbytes_allocated
            + self.unrouted_terms.nbytes_allocated
        )

    def used_slots(self) -> int:
        return self.h_owner.count_positive() + self.v_owner.count_positive()

    def owner_ids(self) -> set[int]:
        return self.h_owner.positive_values() | self.v_owner.positive_values()

    def dense_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            self.h_owner.to_numpy(),
            self.v_owner.to_numpy(),
            self.unrouted_terms.to_numpy(),
        )
