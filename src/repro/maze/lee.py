"""Lee-style wave expansion on the routing grid.

Implementation notes
--------------------
The search state is ``(v_idx, h_idx, direction)``: a wavefront cell
plus the direction the wire is travelling through it.  Straight moves
cost their geometric length (tracks are non-uniform); a direction
change costs ``via_penalty`` and requires the intersection to accept a
corner via.  With non-negative costs this is Dijkstra - the standard
generalisation of Lee's algorithm to weighted grids - and it returns a
minimum-cost path whenever one exists, which also makes it the test
oracle for the MBFS router's completeness within a region.

:class:`LeeEngine` packages the search as a registered
:class:`~repro.core.engine.ConnectionEngine` (name ``"lee"``), so the
same code serves as the standalone :class:`MazeRouter` baseline and as
the rescue engine behind ``LevelBConfig.maze_fallback``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Iterable

from repro import instrument
from repro.instrument.names import (
    MAZE_NODES_EXPANDED,
    MAZE_SEARCHES,
    REGION_EXPANSIONS,
)
from repro.geometry import Interval, Path, Point
from repro.grid import RoutingGrid
from repro.core.engine import (
    ConnectionEngine,
    EngineContext,
    Region,
    RoutedConnection,
    path_length,
    register_engine,
)
from repro.core.router import LevelBRouter
from repro.core.tig import GridTerminal

HORIZONTAL = 0
VERTICAL = 1

State = tuple[int, int, int]  # (v_idx, h_idx, direction)


@dataclass
class LeeSearchStats:
    """Effort accounting for one wave expansion."""

    nodes_expanded: int = 0
    nodes_pushed: int = 0


def lee_search(
    grid: RoutingGrid,
    net_id: int,
    source: GridTerminal,
    target: GridTerminal,
    *,
    via_penalty: float = 10.0,
    region: tuple[Interval, Interval] | None = None,
) -> tuple[list[Point] | None, list[tuple[int, int]] | None, LeeSearchStats]:
    """Minimum-cost path between two terminals, or ``None``.

    Returns ``(waypoints, corners, stats)``.  Waypoints are the
    compressed corner sequence (source, corners..., target); corners
    are ``(v_idx, h_idx)`` index pairs ready for
    :meth:`repro.grid.RoutingGrid.commit_path`.
    """
    stats = LeeSearchStats()
    if region is None:
        v_iv = Interval(0, grid.num_vtracks - 1)
        h_iv = Interval(0, grid.num_htracks - 1)
    else:
        v_iv = grid.vtracks.clip_indices(
            region[0].hull(Interval.spanning(source.v_idx, target.v_idx))
        )
        h_iv = grid.htracks.clip_indices(
            region[1].hull(Interval.spanning(source.h_idx, target.h_idx))
        )
    xs, ys = grid.vtracks.coords, grid.htracks.coords

    # Footprinted (wide) nets claim their expanded block at every cell
    # and corner, so the wave must probe the same expansion the commit
    # will make; single-track nets keep the raw-slot fast path.
    if grid.footprint_of(net_id) != (1, 0):

        def h_ok(v: int, h: int) -> bool:
            return grid.span_usable_h(h, v, v, net_id)

        def v_ok(v: int, h: int) -> bool:
            return grid.span_usable_v(v, h, h, net_id)

        def corner_ok(v: int, h: int) -> bool:
            return grid.corner_free(v, h, net_id)

    else:

        def h_ok(v: int, h: int) -> bool:
            return grid.h_slot(v, h) in (0, net_id)

        def v_ok(v: int, h: int) -> bool:
            return grid.v_slot(v, h) in (0, net_id)

        def corner_ok(v: int, h: int) -> bool:
            return h_ok(v, h) and v_ok(v, h)

    dist: dict[State, float] = {}
    parent: dict[State, State | None] = {}
    heap: list[tuple[float, State]] = []
    for direction, ok in ((HORIZONTAL, h_ok), (VERTICAL, v_ok)):
        if ok(source.v_idx, source.h_idx):
            state = (source.v_idx, source.h_idx, direction)
            dist[state] = 0.0
            parent[state] = None
            heapq.heappush(heap, (0.0, state))
            stats.nodes_pushed += 1

    goal: State | None = None
    while heap:
        d, state = heapq.heappop(heap)
        if d > dist.get(state, float("inf")):
            continue
        stats.nodes_expanded += 1
        v, h, direction = state
        if v == target.v_idx and h == target.h_idx:
            goal = state
            break
        moves: list[tuple[State, float]] = []
        if direction == HORIZONTAL:
            for nv in (v - 1, v + 1):
                if v_iv.contains(nv) and h_ok(nv, h):
                    moves.append(((nv, h, HORIZONTAL), float(abs(xs[nv] - xs[v]))))
            if corner_ok(v, h):
                moves.append(((v, h, VERTICAL), via_penalty))
        else:
            for nh in (h - 1, h + 1):
                if h_iv.contains(nh) and v_ok(v, nh):
                    moves.append(((v, nh, VERTICAL), float(abs(ys[nh] - ys[h]))))
            if corner_ok(v, h):
                moves.append(((v, h, HORIZONTAL), via_penalty))
        for nstate, cost in moves:
            nd = d + cost
            if nd < dist.get(nstate, float("inf")):
                dist[nstate] = nd
                parent[nstate] = state
                heapq.heappush(heap, (nd, nstate))
                stats.nodes_pushed += 1

    # One batched instrumentation report per wave expansion: the inner
    # loop above tallies into ``stats`` only.
    inst = instrument.active()
    if inst.enabled:
        inst.count(MAZE_SEARCHES)
        inst.count(MAZE_NODES_EXPANDED, stats.nodes_expanded)

    if goal is None:
        return None, None, stats

    # Walk parents, then compress to waypoints at direction changes.
    states: list[State] = []
    cursor: State | None = goal
    while cursor is not None:
        states.append(cursor)
        cursor = parent[cursor]
    states.reverse()
    waypoints: list[Point] = [Point(xs[states[0][0]], ys[states[0][1]])]
    corners: list[tuple[int, int]] = []
    for prev, nxt in zip(states, states[1:]):
        if prev[2] != nxt[2]:  # in-place direction switch: a corner via
            corners.append((prev[0], prev[1]))
            point = Point(xs[prev[0]], ys[prev[1]])
            if point != waypoints[-1]:
                waypoints.append(point)
    end = Point(xs[goal[0]], ys[goal[1]])
    if end != waypoints[-1]:
        waypoints.append(end)
    elif len(waypoints) == 1:
        waypoints.append(end)  # degenerate same-point path
    return waypoints, corners, stats


@register_engine
class LeeEngine(ConnectionEngine):
    """Lee/Dijkstra wave expansion as a pluggable connection engine.

    Complete within its region (unlike the MBFS, which drops paths with
    more than one corner per track), so with the unbounded region it
    finds a connection whenever one exists.  Committed paths are priced
    with the regular section 3.2 cost model so Lee and MBFS costs
    aggregate on one scale.
    """

    name = "lee"

    def __init__(self, via_penalty: float = 10.0) -> None:
        self.via_penalty = via_penalty

    @classmethod
    def from_config(cls, config: object) -> "LeeEngine":
        return cls(via_penalty=getattr(config, "maze_via_penalty", 10.0))

    def route(
        self,
        ctx: EngineContext,
        net_id: int,
        source: GridTerminal,
        target: GridTerminal,
        regions: Iterable[Region] | None = None,
    ) -> RoutedConnection | None:
        if source == target:
            return None
        grid = ctx.grid
        evaluator = ctx.evaluator(net_id)
        if regions is None:
            regions = ctx.regions(source, target)
        for attempt, region in enumerate(regions):
            if attempt:
                instrument.count(REGION_EXPANSIONS)
            waypoints, corners, stats = lee_search(
                grid,
                net_id,
                source,
                target,
                via_penalty=self.via_penalty,
                region=region,
            )
            ctx.add_nodes(stats.nodes_expanded)
            if waypoints is None or corners is None:
                continue
            # Price the path before committing: the evaluator's memo
            # assumes a frozen grid.
            cost = evaluator.path_cost(
                path_length(waypoints), corners
            ) + evaluator.extra_cost(waypoints, corners)
            with grid.transaction():
                grid.commit_path(net_id, waypoints, corners)
            return RoutedConnection(
                source=source,
                target=target,
                path=Path.from_points(waypoints),
                corners=corners,
                cost=cost,
                expansions_used=attempt,
            )
        return None


class MazeRouter(LevelBRouter):
    """Drop-in level B router that searches with Lee wave expansion.

    Inherits the whole net loop (ordering, Steiner decomposition,
    region escalation, rip-up, refinement) from :class:`LevelBRouter`
    and swaps only the per-connection engine, so benchmark comparisons
    isolate the search algorithm.
    """

    via_penalty: float = 10.0

    def _primary_engine(self) -> ConnectionEngine:
        return LeeEngine(via_penalty=self.via_penalty)
