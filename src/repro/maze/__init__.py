"""Lee-style maze routing baseline.

The paper claims its Track Intersection Graph search completes
interconnections "faster ... on the average when compared to maze type
algorithms" (section 3).  This package provides the comparator: a
classic Lee/Dijkstra wave expansion over the *same* occupancy grid and
reserved-layer model, so head-to-head runs differ only in the search
algorithm.
"""

from repro.maze.lee import LeeEngine, LeeSearchStats, MazeRouter, lee_search

__all__ = ["lee_search", "LeeEngine", "LeeSearchStats", "MazeRouter"]
