#!/usr/bin/env python3
"""Process exploration: how the m3/m4 design rules shape the result.

The paper's area argument hinges on the over-cell layers' design
rules: coarser pitch costs routing capacity, wider/thicker lines buy
delay.  This example sweeps the metal3/metal4 pitch and resistance on
one design and reports area, completion and worst Elmore delay for
each process point - the kind of what-if a technology team would run.

Run:  python examples/process_exploration.py
"""

from repro.bench_suite import random_design
from repro.flow import FlowParams, overcell_flow
from repro.reporting import format_table
from repro.technology import Layer, RoutingDirection, Technology, ViaRule
from repro.timing import levelb_net_delays


def make_tech(mc_pitch: int, mc_width: int, mc_sheet: float) -> Technology:
    """A 4-layer stack with parameterised over-cell layers."""
    return Technology(
        name=f"explore-p{mc_pitch}",
        layers=(
            Layer(1, "metal1", RoutingDirection.VERTICAL, 8, 4,
                  sheet_resistance=0.09, cap_per_lambda=0.23),
            Layer(2, "metal2", RoutingDirection.HORIZONTAL, 8, 4,
                  sheet_resistance=0.07, cap_per_lambda=0.21),
            Layer(3, "metal3", RoutingDirection.VERTICAL, mc_pitch, mc_width,
                  sheet_resistance=mc_sheet, cap_per_lambda=0.19),
            Layer(4, "metal4", RoutingDirection.HORIZONTAL, mc_pitch, mc_width,
                  sheet_resistance=mc_sheet * 0.8, cap_per_lambda=0.18),
        ),
        vias=(ViaRule(1, 2, 4), ViaRule(2, 3, 6), ViaRule(3, 4, 8)),
    )


PROCESS_POINTS = [
    # (label, pitch, width, sheet resistance)
    ("aggressive (fine pitch)", 8, 4, 0.07),
    ("baseline (paper-like)", 12, 6, 0.04),
    ("conservative (coarse)", 16, 8, 0.03),
    ("very coarse", 24, 12, 0.02),
]


def main():
    rows = []
    for label, pitch, width, sheet in PROCESS_POINTS:
        tech = make_tech(pitch, width, sheet)
        design = random_design("process", seed=55, num_cells=10,
                               num_nets=36, num_critical=3)
        result = overcell_flow(design, FlowParams(technology=tech))
        levelb = result.levelb
        worst = 0.0
        for routed in levelb.routed:
            delays = levelb_net_delays(routed, tech)
            if delays:
                worst = max(worst, max(delays.values()))
        grid = levelb.tig.grid
        rows.append([
            label,
            f"{pitch}/{width}",
            f"{result.layout_area:,}",
            f"{levelb.completion_rate:.0%}",
            f"{grid.utilization():.1%}",
            f"{levelb.total_wire_length:,}",
            f"{worst:.1f}",
        ])
    print("Over-cell process exploration (same design, four m3/m4 recipes)\n")
    print(format_table(
        ["Process point", "Pitch/width", "Area", "Done",
         "Grid used", "Level B wire", "Worst delay ps"],
        rows,
    ))
    print(
        "\nReading: finer over-cell pitch adds routing capacity (lower grid\n"
        "utilisation) but narrower lines raise delay; coarse recipes save\n"
        "resistance at the cost of capacity - at some point completion or\n"
        "area must give.  The paper's design rules sit in the middle."
    )


if __name__ == "__main__":
    main()
