#!/usr/bin/env python3
"""Over-cell routing around obstacles (paper section 3).

The level B router "recognizes arbitrarily sized obstacles, for
example, due to power and ground routing or sensitive circuits in the
underlying cells".  This example routes the same design three times:

1. no obstacles (free run),
2. metal4 power straps across the die (horizontal-only obstacles -
   vertical metal3 may still cross them),
3. the straps plus a both-layer exclusion zone over a sensitive
   analog block (the paper's capacitive-coupling case),

and reports how wire length, corners and completion respond.  It also
writes ``obstacles.svg`` showing the third configuration.

Run:  python examples/obstacle_aware_routing.py
"""

from repro.bench_suite import random_design
from repro.core import LevelBRouter
from repro.core.router import Obstacle
from repro.flow import FlowParams, overcell_flow
from repro.geometry import Rect
from repro.viz.svg import svg_flow_result


def run(name, obstacles):
    # Fresh design each run: flows mutate cell placement.
    design = random_design("obsdemo", seed=21, num_cells=10, num_nets=36,
                           num_critical=3)
    params = FlowParams(obstacles=tuple(obstacles))
    result = overcell_flow(design, params)
    lb = result.levelb
    print(
        f"{name:28s} completion={lb.completion_rate:6.1%} "
        f"wire={lb.total_wire_length:7d} corners={lb.total_corners:4d} "
        f"ripups={lb.ripups}"
    )
    return result


def main():
    print("Obstacle-aware level B routing\n" + "-" * 64)
    free = run("no obstacles", [])
    bounds = free.bounds

    # Two metal4 power straps across the full die width: they consume
    # the horizontal layer only, so vertical wires cross beneath.
    # Strap positions are chosen in pin-free y ranges so the straps do
    # not swallow any terminal via stack.
    pin_ys = sorted(
        {t.position(free.levelb.tig.grid).y
         for terms in free.levelb.tig.all_terminals().values()
         for t in terms}
    )
    def strap_at(target_y, height=24):
        y = target_y
        while any(py - height <= y <= py for py in pin_ys):
            y += 4
        return Rect(bounds.x1, y, bounds.x2, y + height)

    straps = [
        Obstacle(strap_at(bounds.y1 + bounds.height // 3),
                 block_h=True, block_v=False, name="VDD strap"),
        Obstacle(strap_at(bounds.y1 + 2 * bounds.height // 3),
                 block_h=True, block_v=False, name="GND strap"),
    ]
    run("power straps (m4 only)", straps)

    # A sensitive block: both layers excluded to avoid coupling.  The
    # block is shrunk/shifted until it covers no terminal.
    pin_pts = {
        t.position(free.levelb.tig.grid)
        for terms in free.levelb.tig.all_terminals().values()
        for t in terms
    }
    cx, cy = bounds.center
    block = Rect(cx - 80, cy - 60, cx + 80, cy + 60)
    while any(block.contains_point(p) for p in pin_pts):
        block = Rect(block.x1 + 4, block.y1 + 4, block.x2 - 4, block.y2 - 4)
    sensitive = Obstacle(block, block_h=True, block_v=True,
                         name="sensitive analog block")
    guarded = run("straps + sensitive block", [*straps, sensitive])

    with open("obstacles.svg", "w") as fh:
        fh.write(svg_flow_result(guarded))
    print("\nLayout with obstacles written to obstacles.svg")

    # Verify the exclusion: no wiring inside the sensitive block.
    grid = guarded.levelb.tig.grid
    hot = 0
    for v in grid.vtracks.index_range(sensitive.rect.x1, sensitive.rect.x2):
        for h in grid.htracks.index_range(sensitive.rect.y1, sensitive.rect.y2):
            if grid.h_slot(v, h) > 0 or grid.v_slot(v, h) > 0:
                hot += 1
    print(f"wired intersections inside the sensitive block: {hot} (must be 0)")


if __name__ == "__main__":
    main()
