#!/usr/bin/env python3
"""The paper's full experiment on the ami33-like benchmark.

Runs the three flows the paper compares:

* two-layer channel routing (the conventional baseline),
* the proposed four-layer over-cell flow (level A + level B),
* the optimistic four-layer channel-router model of Table 3,

prints Tables 1-3 for this example, and writes the level B routing
plot (the paper's Figure 3) to ``ami33_levelb.svg`` plus a terminal
ASCII preview.

Run:  python examples/full_flow_ami33.py [suite]
      (suite: ami33 | xerox | ex3; default ami33)
"""

import sys

from repro.bench_suite import SUITES
from repro.flow import multilayer_channel_flow, overcell_flow, two_layer_flow
from repro.reporting import format_table, table1_rows, table2_rows, table3_rows
from repro.reporting.tables import TABLE1_HEADERS, TABLE2_HEADERS, TABLE3_HEADERS
from repro.viz import render_levelb_ascii
from repro.viz.svg import svg_flow_result


def main():
    suite = sys.argv[1] if len(sys.argv) > 1 else "ami33"
    design = SUITES[suite]()
    print(f"Running flows on {design} ...")

    baseline = two_layer_flow(design)
    print(f"  {baseline.summary()}")
    overcell = overcell_flow(design)
    print(f"  {overcell.summary()}")
    ml_channel = multilayer_channel_flow(design)
    print(f"  {ml_channel.summary()}")

    print("\nTable 1 - example information:")
    print(format_table(TABLE1_HEADERS, table1_rows(design, overcell)))

    print("\nTable 2 - % reduction, over-cell flow vs two-layer channel:")
    print(format_table(TABLE2_HEADERS, table2_rows(baseline, overcell)))

    print("\nTable 3 - layout area vs optimistic 4-layer channel model:")
    print(format_table(TABLE3_HEADERS, table3_rows(ml_channel, overcell)))

    svg_path = f"{suite}_levelb.svg"
    with open(svg_path, "w") as fh:
        fh.write(svg_flow_result(overcell))
    print(f"\nFigure 3 (level B routing) written to {svg_path}")

    print("\nASCII preview of the level B routing:")
    print(
        render_levelb_ascii(
            overcell.levelb, width=100, cells=design.cells.values()
        )
    )


if __name__ == "__main__":
    main()
