#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 worked example.

Builds a small level B instance - three nets A, B, C on a 6x5 track
grid with one obstacle - then:

1. prints the Track Intersection Graph (Figure 1's right half),
2. runs the modified BFS for net B and prints its Path Selection
   Trees (Figure 2),
3. routes all three nets serially with the full level B router and
   prints the resulting paths.

Run:  python examples/quickstart.py
"""

from repro.core import LevelBRouter
from repro.core.search import MBFSearch, candidate_paths
from repro.core.tig import TrackIntersectionGraph
from repro.geometry import Point, Rect
from repro.grid import TrackSet
from repro.netlist import Design, Edge
from repro.viz import render_pst, render_tig


def build_instance():
    """Six vertical tracks, five horizontal; terminals as in Figure 1."""
    vtracks = TrackSet([0, 10, 20, 30, 40, 50])
    htracks = TrackSet([0, 10, 20, 30, 40])
    tig = TrackIntersectionGraph(vtracks, htracks)
    tig.register_net(1, [Point(0, 0), Point(20, 40)])   # net A
    tig.register_net(2, [Point(10, 10), Point(50, 30)])  # net B
    tig.register_net(3, [Point(40, 0), Point(40, 40)])   # net C
    tig.add_obstacle(Rect(25, 15, 35, 25))               # obstacle O1
    return tig


def show_tig(tig):
    print("=" * 64)
    print("Track Intersection Graph (obstacle removes edge (v4,h3)):")
    print(render_tig(tig))


def show_path_selection_trees(tig):
    print("=" * 64)
    print("MBFS for net B - terminals (h2,v2) and (h4,v6):")
    source, target = tig.terminals_of(2)
    result = MBFSearch(tig.grid, 2, source, target).run()
    print(f"  minimum corners: {result.min_corners}")
    print(f"  candidate paths: {len(result.leaves)}")
    for i, root in enumerate(result.roots):
        print(f"\nPath Selection Tree {i + 1} (rooted at {root.name()}):")
        print(render_pst(root, result.leaves))
    print("\nCandidates (track sequences, paper notation):")
    for cand in candidate_paths(result, tig.grid):
        seq = cand.leaf.track_sequence()
        print(
            f"  ({', '.join(seq)}, terminal)  corners={cand.corner_count} "
            f"length={cand.length}"
        )


def route_everything():
    """The same instance via the high-level Design/Router API."""
    print("=" * 64)
    print("Serial level B routing of all three nets:")
    design = Design("figure1")
    # One 1x1-ish dummy cell per terminal, pins at the terminal points.
    terminals = {
        "A": [Point(0, 0), Point(20, 40)],
        "B": [Point(10, 10), Point(50, 30)],
        "C": [Point(40, 0), Point(40, 40)],
    }
    for name, points in terminals.items():
        net = design.add_net(name)
        for k, p in enumerate(points):
            cell = design.add_cell(f"{name}{k}", 8, 8)
            cell.place(p.x, p.y - 8)  # pin on the TOP edge hits p
            net.add_pin(design.add_pin(cell.name, "p", Edge.TOP, 0))
    router = LevelBRouter(
        Rect(-10, -10, 60, 50),
        list(design.nets.values()),
        obstacles=[Rect(25, 15, 35, 25)],
    )
    result = router.route()
    print(f"  completion: {result.completion_rate:.0%}")
    print(f"  total wire length: {result.total_wire_length}")
    print(f"  corner vias: {result.total_corners}")
    for routed in result.routed:
        for conn in routed.connections:
            points = " -> ".join(str(p) for p in conn.path.waypoints())
            print(f"  net {routed.net.name}: {points}")


def main():
    tig = build_instance()
    show_tig(tig)
    show_path_selection_trees(tig)
    route_everything()


if __name__ == "__main__":
    main()
