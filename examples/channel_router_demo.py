#!/usr/bin/env python3
"""The level A substrate by itself: two-layer channel routing.

Routes one hand-made channel and a batch of random ones with both
detailed routers - the always-completing greedy router (Rivest/
Fiduccia style, the paper's reference [5]) and the dogleg left-edge
router - prints the routed channel as ASCII art, and compares track
counts against the density lower bound.

Run:  python examples/channel_router_demo.py
"""

import random

from repro.channels import (
    ChannelProblem,
    ChannelRoutingError,
    GreedyChannelRouter,
    LeftEdgeRouter,
)
from repro.reporting import format_table
from repro.viz import render_channel


def demo_single_channel():
    # A small classic: interleaved pins, one vertical constraint chain.
    problem = ChannelProblem.from_pin_lists(
        top_pins=[(0, 1), (2, 3), (5, 2), (8, 1), (11, 4)],
        bottom_pins=[(1, 2), (4, 1), (7, 3), (10, 4), (12, 2)],
    )
    print(f"{problem}")
    route = GreedyChannelRouter().route(problem)
    route.check(problem)
    print(
        f"greedy: {route.tracks} tracks (density {problem.density()}), "
        f"wire {route.wire_length(8, 8)}, vias {route.via_count()}"
    )
    print(render_channel(route, problem))


def random_problem(seed, length=40, nets=12):
    rng = random.Random(seed)
    top, bottom = [0] * length, [0] * length
    slots = [(s, c) for s in (0, 1) for c in range(length)]
    rng.shuffle(slots)
    i = 0
    for net in range(1, nets + 1):
        for _ in range(rng.randint(2, 4)):
            if i >= len(slots):
                break
            side, col = slots[i]
            i += 1
            (top if side == 0 else bottom)[col] = net
    return ChannelProblem(top=top, bottom=bottom)


def compare_on_random_batch(count=20):
    print("\nGreedy vs left-edge on random channels:")
    rows = []
    greedy_total, lea_total, lea_done = 0, 0, 0
    for seed in range(count):
        problem = random_problem(seed)
        greedy = GreedyChannelRouter().route(problem)
        greedy.check(problem)
        greedy_total += greedy.tracks
        try:
            lea = LeftEdgeRouter().route(problem)
            lea.check(problem)
            lea_total += lea.tracks
            lea_done += 1
            lea_tracks = str(lea.tracks)
        except ChannelRoutingError:
            lea_tracks = "cycle"
        rows.append([seed, problem.density(), greedy.tracks, lea_tracks])
    print(format_table(["Seed", "Density", "Greedy tracks", "LEA tracks"], rows))
    print(
        f"\ngreedy avg tracks: {greedy_total / count:.1f}; "
        f"left-edge completed {lea_done}/{count} "
        f"(avg {lea_total / max(lea_done, 1):.1f} tracks when acyclic)"
    )


def main():
    demo_single_channel()
    compare_on_random_batch()


if __name__ == "__main__":
    main()
