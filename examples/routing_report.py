#!/usr/bin/env python3
"""Post-routing analysis: reports, congestion, timing, persistence.

Runs the over-cell flow on the xerox-like suite, then exercises the
analysis and I/O layers a downstream user would reach for:

* a full text routing report (metrics, congestion heatmap, slowest
  Elmore sinks),
* per-net delay inspection for the nets the paper would call
  "long distance interconnections",
* saving the design and the routing result as JSON.

Run:  python examples/routing_report.py
"""

import json

from repro.analysis import congestion_map, routing_report
from repro.bench_suite import xerox_like
from repro.flow import overcell_flow
from repro.io import flow_result_to_dict, save_design
from repro.technology import Technology
from repro.timing import levelb_net_delays


def main():
    design = xerox_like()
    result = overcell_flow(design)

    print(routing_report(result, top_n=8))

    # The delay story behind the paper's partitioning advice: the ten
    # longest level B nets and their worst Elmore sink delays.
    tech = Technology.four_layer()
    rows = []
    for routed in result.levelb.routed:
        delays = levelb_net_delays(routed, tech)
        if delays:
            rows.append(
                (routed.net.half_perimeter, routed.net.name, max(delays.values()))
            )
    rows.sort(reverse=True)
    print("\nLongest level B nets (HPWL -> worst sink delay):")
    for hpwl, name, worst in rows[:10]:
        print(f"  {name:10s} HPWL {hpwl:6d}  worst {worst:8.2f} ps")

    # Congestion hotspots above 40% utilisation.
    cmap = congestion_map(result.levelb.tig.grid)
    print(
        f"\ncongestion: mean {cmap.mean:.1%}, peak {cmap.peak:.1%}, "
        f"{len(cmap.hotspots(0.4))} bins above 40%"
    )

    save_design(design, "xerox_design.json")
    with open("xerox_result.json", "w") as fh:
        json.dump(flow_result_to_dict(result), fh, indent=2)
    print("\nwrote xerox_design.json and xerox_result.json")


if __name__ == "__main__":
    main()
