#!/usr/bin/env python3
"""Net partitioning strategies and cost-weight tuning (sections 2 & 3.2).

The paper gives the user two levers:

* the partition of nets into channel-routed set A and over-cell set B
  ("if layout area optimization is the priority, channel areas can be
  eliminated and the entire set routed in level B"), and
* the cost weights; sparse designs balance wire length against corner
  context with w1=1, w2*=10, dense ones weight the corner term higher.

This example sweeps both on one design and prints the trade-offs.

Run:  python examples/partition_and_weights.py
"""

from repro.bench_suite import random_design
from repro.core import LevelBConfig
from repro.core.cost import CostWeights
from repro.flow import FlowParams, overcell_flow, two_layer_flow
from repro.partition import PartitionStrategy
from repro.reporting import format_table


def fresh_design():
    return random_design("sweep", seed=42, num_cells=12, num_nets=48,
                         num_critical=5)


def sweep_partitions():
    print("Partition strategy sweep")
    rows = []
    baseline = two_layer_flow(fresh_design())
    rows.append(["two-layer baseline", "-", f"{baseline.layout_area:,}",
                 f"{baseline.wire_length:,}", f"{baseline.via_count}"])
    strategies = [
        (PartitionStrategy.CRITICAL_TO_A, None, "critical->A (paper)"),
        (PartitionStrategy.ALL_B, None, "all nets over-cell"),
        (PartitionStrategy.LONG_TO_B, 150, "long nets (>150) -> B"),
    ]
    for strategy, threshold, label in strategies:
        params = FlowParams(partition=strategy, length_threshold=threshold)
        result = overcell_flow(fresh_design(), params)
        rows.append([
            label,
            f"{result.notes['level_a_nets']}/{result.notes['level_b_nets']}",
            f"{result.layout_area:,}",
            f"{result.wire_length:,}",
            f"{result.via_count}",
        ])
    print(format_table(
        ["Strategy", "A/B nets", "Area", "Wire length", "Vias"], rows
    ))


def sweep_weights():
    print("\nCost-weight sweep (level B only)")
    rows = []
    for weights, label in [
        (CostWeights.sparse(), "sparse  (w1=1, w2*=10)"),
        (CostWeights.dense(), "dense   (w1=1, w2*=30)"),
        (CostWeights.length_only(), "length-only (w2*=0)"),
    ]:
        params = FlowParams(levelb=LevelBConfig(weights=weights))
        result = overcell_flow(fresh_design(), params)
        lb = result.levelb
        rows.append([
            label,
            f"{lb.completion_rate:.1%}",
            f"{lb.total_wire_length:,}",
            lb.total_corners,
            lb.ripups,
        ])
    print(format_table(
        ["Weights", "Completion", "Level B wire", "Corners", "Rip-ups"], rows
    ))


def main():
    sweep_partitions()
    sweep_weights()


if __name__ == "__main__":
    main()
